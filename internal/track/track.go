// Package track implements the paper's "tennis detector": it segments and
// tracks the tennis players within a playing shot and extracts the shape
// features of the segmented player's binary representation.
//
// Following the paper: "Using estimated statistics of the tennis field
// color, the algorithm does the initial quadratic segmentation of the first
// image of a video sequence classified as a playing shot. In the next
// frames, we predict the player position and search for a similar region in
// the neighborhood of the initially detected player." The "quadratic
// segmentation" is realized as a quadtree split: homogeneous blocks
// matching a background colour model are discarded wholesale, heterogeneous
// blocks are subdivided, and only leaf blocks are tested per pixel.
//
// Per frame the detector emits the player's position, dominant colour, and
// the standard shape features (mass centre, area, bounding box,
// orientation, eccentricity) via frame.Shape.
package track

import (
	"math"
	"sort"

	"repro/internal/frame"
)

// Config tunes segmentation and tracking.
type Config struct {
	// CourtK is the std-deviation multiplier for background membership
	// (default 3).
	CourtK float64
	// MinStd floors the per-channel deviation of background clusters so
	// sensor noise does not create foreground (default 6).
	MinStd float64
	// LumaMin and LumaMax bound foreground luminance: pixels brighter than
	// LumaMax are court lines / net tape, darker than LumaMin net band or
	// shadow (defaults 50 and 225).
	LumaMin, LumaMax float64
	// QuadMinBlock is the smallest quadtree block subdivided; blocks at or
	// below this size are tested per pixel (default 8).
	QuadMinBlock int
	// SearchRadius is the half-size of the prediction search window
	// (default 24).
	SearchRadius int
	// MinArea is the smallest component accepted as the (near) player;
	// the far player uses MinArea/4 (default 24).
	MinArea int
	// GridBlocks is the background-estimation grid resolution per axis
	// (default 8).
	GridBlocks int
	// ClusterTol is the mean-colour distance within which two grid blocks
	// belong to the same background cluster (default 35).
	ClusterTol float64
	// MinClusterBlocks is the minimum number of grid blocks for a cluster
	// to count as background (default 4).
	MinClusterBlocks int
	// MaxCoast is how many consecutive frames a tracker may coast on its
	// prediction without any matching component before it reports lost
	// (default 10).
	MaxCoast int
}

// DefaultConfig returns tuned defaults for 160x120 broadcast frames.
func DefaultConfig() Config {
	return Config{
		CourtK:           3,
		MinStd:           6,
		LumaMin:          50,
		LumaMax:          225,
		QuadMinBlock:     8,
		SearchRadius:     24,
		MinArea:          24,
		GridBlocks:       8,
		ClusterTol:       35,
		MinClusterBlocks: 4,
		MaxCoast:         10,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.CourtK == 0 {
		c.CourtK = d.CourtK
	}
	if c.MinStd == 0 {
		c.MinStd = d.MinStd
	}
	if c.LumaMin == 0 {
		c.LumaMin = d.LumaMin
	}
	if c.LumaMax == 0 {
		c.LumaMax = d.LumaMax
	}
	if c.QuadMinBlock == 0 {
		c.QuadMinBlock = d.QuadMinBlock
	}
	if c.SearchRadius == 0 {
		c.SearchRadius = d.SearchRadius
	}
	if c.MinArea == 0 {
		c.MinArea = d.MinArea
	}
	if c.GridBlocks == 0 {
		c.GridBlocks = d.GridBlocks
	}
	if c.ClusterTol == 0 {
		c.ClusterTol = d.ClusterTol
	}
	if c.MinClusterBlocks == 0 {
		c.MinClusterBlocks = d.MinClusterBlocks
	}
	if c.MaxCoast == 0 {
		c.MaxCoast = d.MaxCoast
	}
	return c
}

// Background is a set of colour clusters covering the static scene (court
// surface, apron, stands); pixels matching any cluster are not foreground.
type Background struct {
	Clusters []frame.ColorStats
}

// Match reports whether the colour belongs to any background cluster.
func (b *Background) Match(c frame.RGB, k, minStd float64) bool {
	for i := range b.Clusters {
		if b.Clusters[i].Within(c, k, minStd) {
			return true
		}
	}
	return false
}

// EstimateBackground builds the background colour model from one frame by
// clustering the mean colours of a GridBlocks×GridBlocks partition. Large
// homogeneous clusters (the court and its surround) become background;
// small ones (players, lines) are ignored. This realizes the "estimated
// statistics of the tennis field color" of the paper without requiring a
// calibrated court model.
func EstimateBackground(im *frame.Image, cfg Config) Background {
	cfg = cfg.withDefaults()
	n := cfg.GridBlocks
	type blockInfo struct {
		stats frame.ColorStats
	}
	blocks := make([]blockInfo, 0, n*n)
	bw, bh := im.W/n, im.H/n
	for by := 0; by < n; by++ {
		for bx := 0; bx < n; bx++ {
			r := frame.Rect{X0: bx * bw, Y0: by * bh, X1: (bx + 1) * bw, Y1: (by + 1) * bh}
			blocks = append(blocks, blockInfo{stats: frame.StatsOfRegion(im, r)})
		}
	}
	// Greedy clustering by mean colour.
	type cluster struct {
		members []frame.ColorStats
		mean    frame.RGB
	}
	var clusters []*cluster
	for _, b := range blocks {
		m := b.stats.Mean()
		var best *cluster
		bestD := cfg.ClusterTol
		for _, cl := range clusters {
			if d := frame.ColorDist(m, cl.mean); d <= bestD {
				best, bestD = cl, d
			}
		}
		if best == nil {
			clusters = append(clusters, &cluster{members: []frame.ColorStats{b.stats}, mean: m})
			continue
		}
		best.members = append(best.members, b.stats)
		// Update the running mean colour.
		var sr, sg, sb float64
		for _, s := range best.members {
			sr += s.MeanR
			sg += s.MeanG
			sb += s.MeanB
		}
		k := float64(len(best.members))
		best.mean = frame.RGB{R: uint8(sr / k), G: uint8(sg / k), B: uint8(sb / k)}
	}
	var bg Background
	for _, cl := range clusters {
		if len(cl.members) < cfg.MinClusterBlocks {
			continue
		}
		bg.Clusters = append(bg.Clusters, mergeStats(cl.members))
	}
	return bg
}

// mergeStats pools per-block statistics into one cluster model.
func mergeStats(ss []frame.ColorStats) frame.ColorStats {
	var out frame.ColorStats
	var n float64
	for _, s := range ss {
		w := float64(s.N)
		out.MeanR += s.MeanR * w
		out.MeanG += s.MeanG * w
		out.MeanB += s.MeanB * w
		n += w
	}
	if n == 0 {
		return out
	}
	out.MeanR /= n
	out.MeanG /= n
	out.MeanB /= n
	// Pooled deviation: within-block variance plus between-block spread.
	var vr, vg, vb float64
	for _, s := range ss {
		w := float64(s.N) / n
		vr += w * (s.StdR*s.StdR + (s.MeanR-out.MeanR)*(s.MeanR-out.MeanR))
		vg += w * (s.StdG*s.StdG + (s.MeanG-out.MeanG)*(s.MeanG-out.MeanG))
		vb += w * (s.StdB*s.StdB + (s.MeanB-out.MeanB)*(s.MeanB-out.MeanB))
	}
	out.StdR, out.StdG, out.StdB = math.Sqrt(vr), math.Sqrt(vg), math.Sqrt(vb)
	out.N = int(n)
	return out
}

// foregroundPixel reports whether one pixel is foreground under the model.
func foregroundPixel(c frame.RGB, bg *Background, cfg *Config) bool {
	l := frame.Luma(c)
	if l < cfg.LumaMin || l > cfg.LumaMax {
		return false
	}
	return !bg.Match(c, cfg.CourtK, cfg.MinStd)
}

// QuadSegment performs the quadtree ("quadratic") segmentation of the
// region r: blocks whose colour statistics match a background cluster are
// discarded whole; heterogeneous blocks are split until QuadMinBlock, then
// tested per pixel. The returned mask has the dimensions of im, with
// foreground only inside r.
func QuadSegment(im *frame.Image, bg Background, r frame.Rect, cfg Config) *frame.Mask {
	cfg = cfg.withDefaults()
	mask := frame.NewMask(im.W, im.H)
	r = r.Clip(im)
	var split func(b frame.Rect)
	split = func(b frame.Rect) {
		if b.Empty() {
			return
		}
		if b.W() > cfg.QuadMinBlock || b.H() > cfg.QuadMinBlock {
			s := frame.StatsOfRegion(im, b)
			// A block is all-background if its mean matches a cluster and
			// it is internally homogeneous.
			if blockIsBackground(s, &bg, &cfg) {
				return
			}
			mx := (b.X0 + b.X1) / 2
			my := (b.Y0 + b.Y1) / 2
			split(frame.Rect{X0: b.X0, Y0: b.Y0, X1: mx, Y1: my})
			split(frame.Rect{X0: mx, Y0: b.Y0, X1: b.X1, Y1: my})
			split(frame.Rect{X0: b.X0, Y0: my, X1: mx, Y1: b.Y1})
			split(frame.Rect{X0: mx, Y0: my, X1: b.X1, Y1: b.Y1})
			return
		}
		for y := b.Y0; y < b.Y1; y++ {
			for x := b.X0; x < b.X1; x++ {
				if foregroundPixel(im.At(x, y), &bg, &cfg) {
					mask.Set(x, y, true)
				}
			}
		}
	}
	split(r)
	return mask
}

// blockIsBackground tests whether a whole block can be pruned.
func blockIsBackground(s frame.ColorStats, bg *Background, cfg *Config) bool {
	if s.N == 0 {
		return true
	}
	m := s.Mean()
	if !bg.Match(m, cfg.CourtK, cfg.MinStd) {
		return false
	}
	// Internally heterogeneous blocks may hide a small player against a
	// matching mean; require low spread to prune.
	lim := 2.5 * cfg.MinStd
	return s.StdR < lim && s.StdG < lim && s.StdB < lim
}

// Observation is the per-frame output of the tennis detector for one
// player.
type Observation struct {
	// Frame is the frame index within the shot.
	Frame int
	// Found reports whether the player was re-acquired this frame; when
	// false, X/Y hold the coasted prediction and Shape is zero.
	Found bool
	// X, Y is the player's mass centre.
	X, Y float64
	// VX, VY is the instantaneous velocity estimate (pixels/frame).
	VX, VY float64
	// Shape holds the standard shape features of the segmented player.
	Shape frame.Shape
	// Dominant is the player's dominant (shirt) colour.
	Dominant frame.RGB
}

// Track is the trajectory of one player across a shot.
type Track struct {
	// Obs has one entry per processed frame.
	Obs []Observation
	// LostFrames counts frames where the player was not re-acquired.
	LostFrames int
}

// Found returns the number of frames with a positive acquisition.
func (t *Track) Found() int { return len(t.Obs) - t.LostFrames }

// Positions returns the (x, y) series of the track.
func (t *Track) Positions() ([]float64, []float64) {
	xs := make([]float64, len(t.Obs))
	ys := make([]float64, len(t.Obs))
	for i, o := range t.Obs {
		xs[i], ys[i] = o.X, o.Y
	}
	return xs, ys
}

// Tracker follows a single player with a constant-velocity predictor and a
// local search window, as the paper describes.
type Tracker struct {
	cfg   Config
	bg    Background
	pos   Observation
	coast int
	init  bool
	scale float64 // 1.0 near player, <1 far player (smaller area gate)
}

// NewTracker builds a tracker from an initial observation. scale shrinks
// the component-area gate for the smaller far player (use 1 for the near
// player, ~0.5 for the far player).
func NewTracker(cfg Config, bg Background, initial Observation, scale float64) *Tracker {
	if scale <= 0 {
		scale = 1
	}
	return &Tracker{cfg: cfg.withDefaults(), bg: bg, pos: initial, init: true, scale: scale}
}

// minArea returns the component-area gate for this tracker.
func (t *Tracker) minArea() int {
	a := int(float64(t.cfg.MinArea) * t.scale * t.scale)
	if a < 4 {
		a = 4
	}
	return a
}

// Feed processes the next frame and returns the new observation.
func (t *Tracker) Feed(im *frame.Image, frameIdx int) Observation {
	predX := t.pos.X + t.pos.VX
	predY := t.pos.Y + t.pos.VY
	r := t.cfg.SearchRadius
	window := frame.Rect{
		X0: int(predX) - r, Y0: int(predY) - r,
		X1: int(predX) + r, Y1: int(predY) + r,
	}
	mask := QuadSegment(im, t.bg, window, t.cfg).Open()
	comps := mask.Components()
	best, ok := selectComponent(comps, predX, predY, t.minArea())
	if !ok {
		// Coast on the prediction.
		t.coast++
		obs := Observation{
			Frame: frameIdx, Found: false,
			X: predX, Y: predY,
			VX: t.pos.VX, VY: t.pos.VY,
		}
		t.pos = obs
		return obs
	}
	obs := observe(mask, im, best, frameIdx)
	obs.VX = obs.X - t.pos.X
	obs.VY = obs.Y - t.pos.Y
	t.coast = 0
	t.pos = obs
	return obs
}

// observe builds a full observation (position, shape features rebased to
// frame coordinates, dominant colour) from a segmented component.
func observe(mask *frame.Mask, im *frame.Image, c frame.Component, frameIdx int) Observation {
	cx, cy := c.Centroid()
	sub := mask.SubMask(c.BBox)
	shape := frame.ShapeOf(sub)
	shape.CX += float64(c.BBox.X0)
	shape.CY += float64(c.BBox.Y0)
	shape.BBox = frame.Rect{
		X0: shape.BBox.X0 + c.BBox.X0, Y0: shape.BBox.Y0 + c.BBox.Y0,
		X1: shape.BBox.X1 + c.BBox.X0, Y1: shape.BBox.Y1 + c.BBox.Y0,
	}
	h := frame.NewHistogram(8)
	h.AddRegion(im, shape.BBox)
	dom, _ := h.Peak()
	return Observation{
		Frame: frameIdx, Found: true,
		X: cx, Y: cy,
		Shape: shape, Dominant: dom,
	}
}

// Lost reports whether the tracker has coasted past MaxCoast frames.
func (t *Tracker) Lost() bool { return t.coast > t.cfg.MaxCoast }

// selectComponent picks the component nearest the prediction among those
// meeting the area gate, scoring by area/(1+dist).
func selectComponent(comps []frame.Component, px, py float64, minArea int) (frame.Component, bool) {
	bestScore := -1.0
	var best frame.Component
	for _, c := range comps {
		if c.Area < minArea {
			continue
		}
		cx, cy := c.Centroid()
		d := math.Hypot(cx-px, cy-py)
		score := float64(c.Area) / (1 + d)
		if score > bestScore {
			bestScore, best = score, c
		}
	}
	return best, bestScore >= 0
}

// ShotResult is the full output of the tennis detector over a shot.
type ShotResult struct {
	// Near and Far are the two player tracks (near = lower half).
	Near, Far Track
	// Background is the colour model estimated from the first frame.
	Background Background
}

// TrackShot runs the complete tennis detector over a playing shot:
// background estimation and initial quadratic segmentation on the first
// frame, then predict-and-search tracking of both players.
func TrackShot(frames []*frame.Image, cfg Config) ShotResult {
	cfg = cfg.withDefaults()
	var res ShotResult
	if len(frames) == 0 {
		return res
	}
	first := frames[0]
	res.Background = EstimateBackground(first, cfg)
	// Initial segmentation over the whole frame.
	mask := QuadSegment(first, res.Background, first.Bounds(), cfg).Open()
	comps := mask.Components()
	// Split candidates by vertical half: the broadcast camera always has
	// the near player in the lower half, the far player in the upper half.
	midY := float64(first.H) / 2
	var lower, upper []frame.Component
	for _, c := range comps {
		_, cy := c.Centroid()
		if cy >= midY {
			lower = append(lower, c)
		} else {
			upper = append(upper, c)
		}
	}
	sortByArea(lower)
	sortByArea(upper)
	nearTracker := initTracker(cfg, res.Background, mask, first, lower, 1.0)
	farTracker := initTracker(cfg, res.Background, mask, first, upper, 0.55)
	for i, im := range frames {
		if i == 0 {
			res.Near.Obs = append(res.Near.Obs, firstObservation(nearTracker))
			res.Far.Obs = append(res.Far.Obs, firstObservation(farTracker))
			continue
		}
		feedInto(&res.Near, nearTracker, im, i)
		feedInto(&res.Far, farTracker, im, i)
	}
	return res
}

func feedInto(tr *Track, t *Tracker, im *frame.Image, i int) {
	if t == nil {
		tr.Obs = append(tr.Obs, Observation{Frame: i})
		tr.LostFrames++
		return
	}
	obs := t.Feed(im, i)
	tr.Obs = append(tr.Obs, obs)
	if !obs.Found {
		tr.LostFrames++
	}
}

func firstObservation(t *Tracker) Observation {
	if t == nil {
		return Observation{}
	}
	return t.pos
}

func initTracker(cfg Config, bg Background, mask *frame.Mask, im *frame.Image, comps []frame.Component, scale float64) *Tracker {
	minArea := int(float64(cfg.MinArea) * scale * scale)
	for _, c := range comps {
		if c.Area >= minArea {
			return NewTracker(cfg, bg, observe(mask, im, c, 0), scale)
		}
	}
	return nil
}

func sortByArea(cs []frame.Component) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Area > cs[j].Area })
}
