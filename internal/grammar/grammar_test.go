package grammar

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseTennisGrammar(t *testing.T) {
	g := Tennis()
	if g.Name != "tennis" {
		t.Fatalf("name = %q", g.Name)
	}
	if !reflect.DeepEqual(g.Atoms, []string{"video"}) {
		t.Fatalf("atoms = %v", g.Atoms)
	}
	if len(g.Detectors) != 5 {
		t.Fatalf("detectors = %d", len(g.Detectors))
	}
	seg := g.Detector("segment")
	if seg == nil || seg.Kind != BlackBox {
		t.Fatalf("segment detector = %+v", seg)
	}
	ten := g.Detector("tennis")
	if ten == nil || ten.Kind != WhiteBox || ten.Guard != "class==tennis" {
		t.Fatalf("tennis detector = %+v", ten)
	}
	if !reflect.DeepEqual(ten.Requires, []string{"shots", "classes"}) {
		t.Fatalf("tennis requires = %v", ten.Requires)
	}
	if g.Detector("ghost") != nil {
		t.Fatal("ghost detector found")
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"missing name":       "atom v; detector d requires v produces x whitebox;",
		"no detectors":       "grammar g; atom v;",
		"dup detector":       "grammar g; atom v; detector d requires v produces x whitebox; detector d requires v produces y whitebox;",
		"dup producer":       "grammar g; atom v; detector a requires v produces x whitebox; detector b requires v produces x whitebox;",
		"unknown require":    "grammar g; atom v; detector a requires nope produces x whitebox;",
		"no kind":            "grammar g; atom v; detector a requires v produces x;",
		"requires nothing":   "grammar g; atom v; detector a produces x whitebox;",
		"produces nothing":   "grammar g; atom v; detector a requires v whitebox;",
		"unknown statement":  "grammar g; widget w;",
		"produces atom name": "grammar g; atom v; detector a requires v produces v whitebox;",
	}
	for label, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted %q", label, src)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	src := `grammar g; atom v;
detector a requires v, y produces x whitebox;
detector b requires x produces y whitebox;`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestScheduleOrder(t *testing.T) {
	g := Tennis()
	sched, err := g.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, d := range sched {
		pos[d.Name] = i
	}
	if pos["segment"] > pos["tennis"] {
		t.Fatal("segment must run before tennis")
	}
	for _, ev := range []string{"netplay", "rally", "service"} {
		if pos["tennis"] > pos[ev] {
			t.Fatalf("tennis must run before %s", ev)
		}
	}
	if len(sched) != 5 {
		t.Fatalf("schedule covers %d detectors", len(sched))
	}
}

func TestDependsOn(t *testing.T) {
	g := Tennis()
	deps := g.DependsOn()
	if !reflect.DeepEqual(deps["tennis"], []string{"segment"}) {
		t.Fatalf("tennis deps = %v", deps["tennis"])
	}
	if !reflect.DeepEqual(deps["netplay"], []string{"tennis"}) {
		t.Fatalf("netplay deps = %v", deps["netplay"])
	}
	if len(deps["segment"]) != 0 {
		t.Fatalf("segment deps = %v", deps["segment"])
	}
}

func TestAffectedClosure(t *testing.T) {
	g := Tennis()
	got, err := g.Affected("tennis")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"tennis", "netplay", "rally", "service"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Affected(tennis) = %v, want %v", got, want)
	}
	got, _ = g.Affected("segment")
	if len(got) != 5 {
		t.Fatalf("Affected(segment) = %v, want all 5", got)
	}
	got, _ = g.Affected("rally")
	if !reflect.DeepEqual(got, []string{"rally"}) {
		t.Fatalf("Affected(rally) = %v", got)
	}
	if _, err := g.Affected("ghost"); err == nil {
		t.Fatal("unknown detector accepted")
	}
}

func TestDOTOutput(t *testing.T) {
	g := Tennis()
	dot := g.DOT()
	for _, want := range []string{
		`digraph "tennis"`,
		`"video" [shape=box]`,
		`"segment" -> "tennis"`,
		`"tennis" -> "netplay"`,
		`"tennis" -> "rally"`,
		`"tennis" -> "service"`,
		`"video" -> "segment"`,
		`fillcolor=lightgray`, // blackbox segment detector
		`class==tennis`,       // guard label
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Edge labels carry the flowing symbols.
	if !strings.Contains(dot, "shots") {
		t.Error("DOT missing symbol labels")
	}
}

func TestTextOutput(t *testing.T) {
	g := Tennis()
	txt := g.Text()
	for _, want := range []string{
		"feature grammar \"tennis\"",
		"atoms: video",
		"segment (blackbox)",
		"tennis (whitebox) [class==tennis]",
		"netplay",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text missing %q:\n%s", want, txt)
		}
	}
	// tennis must appear indented under segment.
	segIdx := strings.Index(txt, "segment (blackbox)")
	tenIdx := strings.Index(txt, "  tennis (whitebox)")
	if segIdx < 0 || tenIdx < 0 || tenIdx < segIdx {
		t.Fatalf("text tree misordered:\n%s", txt)
	}
}

func TestParseMultipleAtoms(t *testing.T) {
	g, err := Parse(`grammar g; atom audio, video;
detector d requires audio, video produces x whitebox;`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Atoms, []string{"audio", "video"}) {
		t.Fatalf("atoms = %v", g.Atoms)
	}
}

func TestParseComments(t *testing.T) {
	g, err := Parse(`
# a comment
grammar g; # inline
atom v;
detector d requires v produces x whitebox; # done
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "g" || len(g.Detectors) != 1 {
		t.Fatalf("parsed %+v", g)
	}
}

func TestKindString(t *testing.T) {
	if WhiteBox.String() != "whitebox" || BlackBox.String() != "blackbox" {
		t.Fatal("kind names wrong")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("garbage")
}

func TestDiamondDependency(t *testing.T) {
	// a -> b, a -> c, {b,c} -> d : d scheduled last, Affected(a) = all.
	src := `grammar g; atom v;
detector a requires v produces s1 whitebox;
detector b requires s1 produces s2 whitebox;
detector c requires s1 produces s3 whitebox;
detector d requires s2, s3 produces s4 whitebox;`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sched, _ := g.Schedule()
	if sched[len(sched)-1].Name != "d" {
		t.Fatalf("d not last: %v", sched)
	}
	aff, _ := g.Affected("a")
	if len(aff) != 4 {
		t.Fatalf("Affected(a) = %v", aff)
	}
	aff, _ = g.Affected("b")
	if !reflect.DeepEqual(aff, []string{"b", "d"}) {
		t.Fatalf("Affected(b) = %v", aff)
	}
}
