// Package grammar implements Acoi-style feature grammars: "the feature
// grammar ... describes the relationships between meta-data and detectors
// in a set of grammar rules". A grammar declares atoms (meta-data present
// in the raw document, e.g. the video itself) and detectors, each requiring
// a set of symbols and producing new ones; managing the meta-index "boils
// down to exploiting the dependencies in the feature grammar".
//
// From a grammar the package derives the detector dependency graph — the
// exact content of Figure 1 of the paper, exportable as DOT or text — a
// topological execution schedule for the Feature Detector Engine
// (internal/fde), and the downstream closure needed for incremental
// re-indexing when a detector implementation changes.
package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes white-box detectors (in-process functions the engine
// can reason about) from black-box detectors (external programs driven over
// stdio), the distinction the paper draws for the rule detectors and the
// externally implemented segment detector.
type Kind int

// Detector kinds.
const (
	WhiteBox Kind = iota
	BlackBox
)

// String names the kind.
func (k Kind) String() string {
	if k == BlackBox {
		return "blackbox"
	}
	return "whitebox"
}

// Detector is one node of the feature grammar: a named extraction step.
type Detector struct {
	// Name identifies the detector.
	Name string
	// Kind is white- or black-box.
	Kind Kind
	// Requires are the symbols that must exist before the detector runs.
	Requires []string
	// Produces are the symbols the detector populates.
	Produces []string
	// Guard is an optional condition label (e.g. "class==tennis"): the
	// engine only applies the detector to items satisfying it. Purely
	// declarative here; the FDE binds it to an executable predicate.
	Guard string
}

// Grammar is a parsed feature grammar.
type Grammar struct {
	// Name labels the grammar (e.g. "tennis").
	Name string
	// Atoms are symbols present in the raw data without any detector.
	Atoms []string
	// Detectors in declaration order.
	Detectors []*Detector
}

// Parse reads the textual grammar format:
//
//	grammar tennis;
//	atom video;
//	detector segment requires video produces shots, classes blackbox;
//	detector tennis  requires shots, classes produces players whitebox guard class==tennis;
//
// Statements end with ';'. '#' comments run to end of line.
func Parse(src string) (*Grammar, error) {
	g := &Grammar{}
	// Strip comments.
	var sb strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	stmts := strings.Split(sb.String(), ";")
	for _, stmt := range stmts {
		fields := strings.Fields(strings.ReplaceAll(stmt, ",", " , "))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "grammar":
			if len(fields) != 2 {
				return nil, fmt.Errorf("grammar: bad grammar statement: %q", stmt)
			}
			g.Name = fields[1]
		case "atom":
			if len(fields) < 2 {
				return nil, fmt.Errorf("grammar: bad atom statement: %q", stmt)
			}
			for _, f := range fields[1:] {
				if f == "," {
					continue
				}
				g.Atoms = append(g.Atoms, f)
			}
		case "detector":
			d, err := parseDetector(fields)
			if err != nil {
				return nil, err
			}
			g.Detectors = append(g.Detectors, d)
		default:
			return nil, fmt.Errorf("grammar: unknown statement %q", fields[0])
		}
	}
	if g.Name == "" {
		return nil, fmt.Errorf("grammar: missing grammar name")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustParse parses or panics; for grammars embedded in source.
func MustParse(src string) *Grammar {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

func parseDetector(fields []string) (*Detector, error) {
	// detector NAME requires a, b produces c, d whitebox|blackbox [guard EXPR]
	d := &Detector{}
	if len(fields) < 2 {
		return nil, fmt.Errorf("grammar: detector needs a name")
	}
	d.Name = fields[1]
	i := 2
	readList := func() []string {
		var out []string
		for i < len(fields) {
			f := fields[i]
			if f == "," {
				i++
				continue
			}
			if f == "requires" || f == "produces" || f == "whitebox" || f == "blackbox" || f == "guard" {
				break
			}
			out = append(out, f)
			i++
		}
		return out
	}
	seenKind := false
	for i < len(fields) {
		switch fields[i] {
		case "requires":
			i++
			d.Requires = readList()
		case "produces":
			i++
			d.Produces = readList()
		case "whitebox":
			d.Kind = WhiteBox
			seenKind = true
			i++
		case "blackbox":
			d.Kind = BlackBox
			seenKind = true
			i++
		case "guard":
			i++
			var parts []string
			for i < len(fields) {
				parts = append(parts, fields[i])
				i++
			}
			d.Guard = strings.Join(parts, " ")
		default:
			return nil, fmt.Errorf("grammar: detector %s: unexpected token %q", d.Name, fields[i])
		}
	}
	if len(d.Requires) == 0 {
		return nil, fmt.Errorf("grammar: detector %s requires nothing", d.Name)
	}
	if len(d.Produces) == 0 {
		return nil, fmt.Errorf("grammar: detector %s produces nothing", d.Name)
	}
	if !seenKind {
		return nil, fmt.Errorf("grammar: detector %s missing whitebox/blackbox", d.Name)
	}
	return d, nil
}

// Validate checks structural sanity: unique names, every required symbol
// produced by an atom or exactly one detector, and acyclicity.
func (g *Grammar) Validate() error {
	if len(g.Detectors) == 0 {
		return fmt.Errorf("grammar %s: no detectors", g.Name)
	}
	names := map[string]bool{}
	producer := map[string]string{}
	for _, a := range g.Atoms {
		producer[a] = "" // atom
	}
	for _, d := range g.Detectors {
		if names[d.Name] {
			return fmt.Errorf("grammar %s: duplicate detector %q", g.Name, d.Name)
		}
		names[d.Name] = true
		for _, p := range d.Produces {
			if prev, ok := producer[p]; ok {
				who := prev
				if who == "" {
					who = "atom declaration"
				}
				return fmt.Errorf("grammar %s: symbol %q produced by both %s and %s", g.Name, p, who, d.Name)
			}
			producer[p] = d.Name
		}
	}
	for _, d := range g.Detectors {
		for _, r := range d.Requires {
			if _, ok := producer[r]; !ok {
				return fmt.Errorf("grammar %s: detector %s requires unknown symbol %q", g.Name, d.Name, r)
			}
		}
	}
	if _, err := g.Schedule(); err != nil {
		return err
	}
	return nil
}

// producers maps each symbol to the detector producing it ("" for atoms).
func (g *Grammar) producers() map[string]string {
	m := map[string]string{}
	for _, a := range g.Atoms {
		m[a] = ""
	}
	for _, d := range g.Detectors {
		for _, p := range d.Produces {
			m[p] = d.Name
		}
	}
	return m
}

// DependsOn returns the detector-level dependency edges: B depends on A
// when B requires a symbol A produces. The map is keyed by detector name
// with sorted upstream detector names as values (atoms excluded).
func (g *Grammar) DependsOn() map[string][]string {
	prod := g.producers()
	out := map[string][]string{}
	for _, d := range g.Detectors {
		seen := map[string]bool{}
		for _, r := range d.Requires {
			if up := prod[r]; up != "" && !seen[up] {
				seen[up] = true
				out[d.Name] = append(out[d.Name], up)
			}
		}
		sort.Strings(out[d.Name])
	}
	return out
}

// Schedule returns the detectors in a valid execution order (dependencies
// first). It fails on cycles.
func (g *Grammar) Schedule() ([]*Detector, error) {
	deps := g.DependsOn()
	indeg := map[string]int{}
	byName := map[string]*Detector{}
	for _, d := range g.Detectors {
		byName[d.Name] = d
		indeg[d.Name] = len(deps[d.Name])
	}
	downstream := map[string][]string{}
	for name, ups := range deps {
		for _, up := range ups {
			downstream[up] = append(downstream[up], name)
		}
	}
	// Kahn's algorithm, deterministic order: ready queue kept sorted, with
	// declaration order as the tiebreak base.
	var ready []string
	for _, d := range g.Detectors {
		if indeg[d.Name] == 0 {
			ready = append(ready, d.Name)
		}
	}
	var out []*Detector
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		out = append(out, byName[name])
		next := downstream[name]
		sort.Strings(next)
		for _, dn := range next {
			indeg[dn]--
			if indeg[dn] == 0 {
				ready = append(ready, dn)
			}
		}
	}
	if len(out) != len(g.Detectors) {
		var stuck []string
		for n, k := range indeg {
			if k > 0 {
				stuck = append(stuck, n)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("grammar %s: dependency cycle among: %s", g.Name, strings.Join(stuck, ", "))
	}
	return out, nil
}

// Affected returns the names of all detectors downstream of (and including)
// the given changed detectors, in schedule order: the set the FDE must
// re-run for incremental re-indexing.
func (g *Grammar) Affected(changed ...string) ([]string, error) {
	sched, err := g.Schedule()
	if err != nil {
		return nil, err
	}
	deps := g.DependsOn()
	in := map[string]bool{}
	for _, c := range changed {
		found := false
		for _, d := range g.Detectors {
			if d.Name == c {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("grammar %s: unknown detector %q", g.Name, c)
		}
		in[c] = true
	}
	var out []string
	for _, d := range sched {
		if in[d.Name] {
			out = append(out, d.Name)
			continue
		}
		for _, up := range deps[d.Name] {
			if in[up] {
				in[d.Name] = true
				out = append(out, d.Name)
				break
			}
		}
	}
	return out, nil
}

// Detector returns the named detector, or nil.
func (g *Grammar) Detector(name string) *Detector {
	for _, d := range g.Detectors {
		if d.Name == name {
			return d
		}
	}
	return nil
}
