package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the detector dependency graph — the content of Figure 1 of
// the paper — in Graphviz DOT format. Atoms are boxes, white-box detectors
// ellipses, black-box detectors shaded ellipses; edges are labelled with
// the symbols that flow along them.
func (g *Grammar) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n")
	for _, a := range g.Atoms {
		fmt.Fprintf(&b, "  %q [shape=box];\n", a)
	}
	for _, d := range g.Detectors {
		style := ""
		if d.Kind == BlackBox {
			style = ", style=filled, fillcolor=lightgray"
		}
		label := d.Name
		if d.Guard != "" {
			label += "\\n[" + d.Guard + "]"
		}
		fmt.Fprintf(&b, "  %q [shape=ellipse, label=\"%s\"%s];\n", d.Name, label, style)
	}
	prod := g.producers()
	for _, d := range g.Detectors {
		// Group the symbols flowing from each upstream node.
		bySource := map[string][]string{}
		for _, r := range d.Requires {
			src, ok := prod[r]
			if !ok {
				continue
			}
			if src == "" {
				src = r // atom: edge from the atom node itself
			}
			bySource[src] = append(bySource[src], r)
		}
		srcs := make([]string, 0, len(bySource))
		for s := range bySource {
			srcs = append(srcs, s)
		}
		sort.Strings(srcs)
		for _, src := range srcs {
			syms := bySource[src]
			sort.Strings(syms)
			label := strings.Join(syms, ", ")
			if src == label {
				label = "" // atom flowing itself needs no edge label
			}
			if label != "" {
				fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", src, d.Name, label)
			} else {
				fmt.Fprintf(&b, "  %q -> %q;\n", src, d.Name)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Text renders the dependency graph as an indented text tree rooted at the
// atoms, for terminals without Graphviz.
func (g *Grammar) Text() string {
	deps := g.DependsOn()
	downstream := map[string][]string{}
	for name, ups := range deps {
		for _, up := range ups {
			downstream[up] = append(downstream[up], name)
		}
	}
	// Atom-fed detectors are roots.
	prod := g.producers()
	var roots []string
	for _, d := range g.Detectors {
		if len(deps[d.Name]) == 0 {
			roots = append(roots, d.Name)
		}
	}
	sort.Strings(roots)
	var b strings.Builder
	fmt.Fprintf(&b, "feature grammar %q\n", g.Name)
	fmt.Fprintf(&b, "atoms: %s\n", strings.Join(g.Atoms, ", "))
	var walk func(name string, depth int, seen map[string]bool)
	walk = func(name string, depth int, seen map[string]bool) {
		d := g.Detector(name)
		guard := ""
		if d.Guard != "" {
			guard = " [" + d.Guard + "]"
		}
		fmt.Fprintf(&b, "%s%s (%s)%s -> %s\n",
			strings.Repeat("  ", depth), name, d.Kind, guard,
			strings.Join(d.Produces, ", "))
		if seen[name] {
			return
		}
		seen[name] = true
		next := append([]string(nil), downstream[name]...)
		sort.Strings(next)
		for _, n := range next {
			walk(n, depth+1, seen)
		}
	}
	seen := map[string]bool{}
	for _, r := range roots {
		walk(r, 0, seen)
	}
	_ = prod
	return b.String()
}

// TennisGrammar is the feature grammar of the tennis Feature Detector
// Engine, reproducing Figure 1: the segment detector (black-box, external
// in the original system) segments and classifies shots; the tennis
// detector runs on shots classified "tennis" and tracks the players,
// extracting positions and shape features; the event detectors interpret
// the trajectories through spatio-temporal rules.
const TennisGrammar = `
grammar tennis;

atom video;

# The externally implemented segment detector: shot boundaries via colour
# histogram differences, plus shot classification.
detector segment requires video produces shots, classes blackbox;

# The tennis detector: player segmentation and tracking with shape
# features; runs only on shots classified as tennis.
detector tennis requires shots, classes produces players, trajectories, shapes whitebox guard class==tennis;

# Event inference from player trajectories via spatio-temporal rules.
detector netplay requires trajectories produces event_netplay whitebox;
detector rally   requires trajectories, shapes produces event_rally whitebox;
detector service requires trajectories produces event_service whitebox;
`

// Tennis returns the parsed tennis feature grammar.
func Tennis() *Grammar { return MustParse(TennisGrammar) }
