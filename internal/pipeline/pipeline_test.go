package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/fde"
	"repro/internal/frame"
	"repro/internal/synth"
)

// ------------------------------------------------------------ worker pool

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var ran atomic.Int64
		errs := ForEach(context.Background(), workers, 20, func(context.Context, int) error {
			ran.Add(1)
			return nil
		})
		if ran.Load() != 20 {
			t.Fatalf("workers=%d: ran %d of 20", workers, ran.Load())
		}
		if err := FirstError(errs); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	ForEach(context.Background(), workers, 30, func(context.Context, int) error {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer cur.Add(-1)
		return nil
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent items, bound is %d", p, workers)
	}
}

func TestForEachPerItemErrors(t *testing.T) {
	boom := errors.New("boom")
	errs := ForEach(context.Background(), 4, 10, func(_ context.Context, i int) error {
		if i%3 == 0 {
			return fmt.Errorf("item %d: %w", i, boom)
		}
		return nil
	})
	for i, err := range errs {
		if (i%3 == 0) != (err != nil) {
			t.Fatalf("item %d: err = %v", i, err)
		}
		if err != nil && !errors.Is(err, boom) {
			t.Fatalf("item %d: err = %v", i, err)
		}
	}
	if err := FirstError(errs); !errors.Is(err, boom) {
		t.Fatalf("FirstError = %v", err)
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	errs := ForEach(ctx, 2, 50, func(ctx context.Context, i int) error {
		if started.Add(1) == 4 {
			cancel()
		}
		return ctx.Err()
	})
	if started.Load() == 50 {
		t.Fatal("cancellation did not stop dispatch")
	}
	canceled := 0
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no item reported context.Canceled")
	}
	// Every never-started item must carry the context error.
	if got := int(started.Load()); canceled < 50-got {
		t.Fatalf("started %d but only %d items report cancellation", got, canceled)
	}
}

func TestForEachEmpty(t *testing.T) {
	if errs := ForEach(context.Background(), 4, 0, nil); len(errs) != 0 {
		t.Fatalf("empty batch returned %d errors", len(errs))
	}
}

// -------------------------------------------------------------- ingestor

var (
	testCorpusOnce sync.Once
	testCorpus     []*synth.Video
)

func corpus(t *testing.T) []*synth.Video {
	t.Helper()
	testCorpusOnce.Do(func() {
		cfg := synth.DefaultConfig(600)
		cfg.Shots = 3
		vids, err := synth.GenerateCorpus(cfg, 4)
		if err != nil {
			panic(err)
		}
		testCorpus = vids
	})
	return testCorpus
}

func corpusJobs(vids []*synth.Video) []Job {
	jobs := make([]Job, len(vids))
	for i, v := range vids {
		jobs[i] = Job{
			Video: core.Video{
				Name: fmt.Sprintf("clip-%02d", i), Width: v.W, Height: v.H,
				FPS: v.FPS, Frames: len(v.Frames),
			},
			Frames: v.Frames,
		}
	}
	return jobs
}

func newEngine(t *testing.T) *fde.Engine {
	t.Helper()
	engine, err := fde.NewTennisEngine(fde.DefaultTennisConfig())
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

func TestIngestorMatchesSequential(t *testing.T) {
	vids := corpus(t)
	jobs := corpusJobs(vids)

	// Sequential reference: one engine, one index, job order.
	seqIdx, err := core.NewMetaIndex()
	if err != nil {
		t.Fatal(err)
	}
	seqEngine := newEngine(t)
	for _, job := range jobs {
		parse, err := seqEngine.Process(job.Video, job.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fde.IndexResult(parse, seqIdx); err != nil {
			t.Fatal(err)
		}
	}
	var want bytes.Buffer
	if err := seqIdx.Serialize(&want); err != nil {
		t.Fatal(err)
	}

	var progress []Progress
	in, err := New(newEngine(t), Config{Workers: 4, OnProgress: func(p Progress) {
		progress = append(progress, p)
	}})
	if err != nil {
		t.Fatal(err)
	}
	results, err := in.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.Seq, r.Err)
		}
		if r.Frames != len(jobs[r.Seq].Frames) {
			t.Fatalf("job %d parsed %d frames", r.Seq, r.Frames)
		}
	}
	if len(progress) != len(jobs) || progress[len(progress)-1].Done != len(jobs) {
		t.Fatalf("progress callbacks = %d, final = %+v", len(progress), progress[len(progress)-1])
	}
	var got bytes.Buffer
	if err := in.Index().Serialize(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("parallel ingest serialization differs from sequential (%d vs %d bytes)",
			got.Len(), want.Len())
	}
}

func TestIngestorOpenAndErrors(t *testing.T) {
	vids := corpus(t)
	jobs := corpusJobs(vids[:2])
	openErr := errors.New("decode failed")
	jobs = append(jobs, Job{
		Video: core.Video{Name: "broken"},
		Open: func() (core.Video, []*frame.Image, error) {
			return core.Video{}, nil, openErr
		},
	})
	v := vids[2]
	jobs = append(jobs, Job{
		Open: func() (core.Video, []*frame.Image, error) {
			return core.Video{
				Name: "opened", Width: v.W, Height: v.H, FPS: v.FPS,
				Frames: len(v.Frames),
			}, v.Frames, nil
		},
	})

	in, err := New(newEngine(t), Config{Workers: 2, ContinueOnError: true})
	if err != nil {
		t.Fatal(err)
	}
	results, err := in.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[2].Err, openErr) {
		t.Fatalf("job 2 err = %v", results[2].Err)
	}
	if results[3].Err != nil || results[3].Name != "opened" {
		t.Fatalf("lazy-open job = %+v", results[3])
	}
	dst, err := core.NewMetaIndex()
	if err != nil {
		t.Fatal(err)
	}
	ids, err := in.MergeInto(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("merged %d videos, want 3 (failed job excluded)", len(ids))
	}
	if _, ok := ids[2]; ok {
		t.Fatal("failed job present in merge mapping")
	}
	if _, err := dst.VideoByName("opened"); err != nil {
		t.Fatal(err)
	}
}

func TestIngestorNilEngine(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil engine accepted")
	}
}
