// Package pipeline implements the concurrent batch-ingestion subsystem: a
// worker pool that fans per-video Feature Detector Engine parses out across
// CPUs, committing each parse into a sharded meta-index and merging the
// shards back deterministically. The paper's architecture separates the
// offline indexing pipeline (FDE -> meta-index) from the online search
// engine precisely so the former can be scaled out; this package is that
// seam: job -> worker -> shard -> merge.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fde"
	"repro/internal/frame"
	"repro/internal/vidfmt"
)

// Job is one video to ingest. Either Frames is set, or Open returns the
// decoded frames on demand — the latter keeps decode I/O inside the worker
// pool so it overlaps with detector compute on other workers.
type Job struct {
	// Video carries the document metadata. When Open is set the metadata
	// returned by Open wins.
	Video core.Video
	// Frames is the decoded raw-data layer, if already in memory.
	Frames []*frame.Image
	// Open lazily decodes the video (e.g. from an SVF file).
	Open func() (core.Video, []*frame.Image, error)
}

// SVFJob builds a Job that lazily decodes an SVF file inside the worker
// pool. name defaults to the file's base name without extension.
func SVFJob(path, name string) Job {
	if name == "" {
		name = vidfmt.BaseName(path)
	}
	return Job{
		Video: core.Video{Name: name},
		Open: func() (core.Video, []*frame.Image, error) {
			frames, meta, err := vidfmt.ReadFile(path)
			if err != nil {
				return core.Video{}, nil, err
			}
			return core.Video{
				Name: name, Path: path,
				Width: meta.Width, Height: meta.Height,
				FPS: meta.FPS, Frames: meta.Frames,
			}, frames, nil
		},
	}
}

// Result reports the outcome of one job.
type Result struct {
	// Seq is the job's index in the submitted slice.
	Seq int
	// Name is the document name.
	Name string
	// VideoID is the shard-local video ID; after MergeInto it is superseded
	// by the merged mapping.
	VideoID int64
	// Frames is the number of frames parsed.
	Frames int
	// Duration is the wall-clock time spent decoding and parsing.
	Duration time.Duration
	// Err is the job failure, nil on success. Jobs never started after a
	// cancellation report the context error.
	Err error
}

// Progress is delivered to the OnProgress callback after every job.
type Progress struct {
	// Done counts finished jobs (successful or failed); Total is the batch
	// size.
	Done, Total int
	// Result is the finished job's outcome.
	Result Result
}

// Config tunes an Ingestor.
type Config struct {
	// Workers bounds pool concurrency; < 1 selects GOMAXPROCS.
	Workers int
	// Shards is the meta-index shard count; < 1 selects Workers.
	Shards int
	// ContinueOnError keeps the batch running after a job fails; the
	// default stops dispatching new jobs on the first failure.
	ContinueOnError bool
	// OnProgress, when set, is invoked after every finished job. Calls are
	// serialized; the callback must not block for long.
	OnProgress func(Progress)
}

// Ingestor runs batches of videos through one FDE into a sharded
// meta-index.
type Ingestor struct {
	engine  *fde.Engine
	cfg     Config
	sharded *core.ShardedMetaIndex

	mu sync.Mutex // serializes OnProgress and the per-Run done counter
}

// New creates an Ingestor around a fully bound engine.
func New(engine *fde.Engine, cfg Config) (*Ingestor, error) {
	if engine == nil {
		return nil, fmt.Errorf("pipeline: nil engine")
	}
	cfg.Workers = Workers(cfg.Workers)
	if cfg.Shards < 1 {
		cfg.Shards = cfg.Workers
	}
	sharded, err := core.NewShardedMetaIndex(cfg.Shards)
	if err != nil {
		return nil, err
	}
	return &Ingestor{engine: engine, cfg: cfg, sharded: sharded}, nil
}

// Index exposes the sharded meta-index accumulating committed parses.
func (in *Ingestor) Index() *core.ShardedMetaIndex { return in.sharded }

// Run ingests the batch: every job is decoded, parsed by the FDE and
// committed to its shard, with at most Config.Workers jobs in flight. It
// always returns one Result per job, in job order. The error is the first
// job failure (nil with ContinueOnError unless the context was canceled);
// on cancellation it is ctx.Err() and the results report which jobs
// completed before the stop.
func (in *Ingestor) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	results := make([]Result, len(jobs))
	runCtx := ctx
	var cancel context.CancelFunc
	if !in.cfg.ContinueOnError {
		runCtx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	total := len(jobs)
	done := 0
	errs := ForEach(runCtx, in.cfg.Workers, len(jobs), func(jctx context.Context, seq int) error {
		res := in.runJob(jctx, seq, jobs[seq])
		results[seq] = res
		in.mu.Lock()
		done++
		if in.cfg.OnProgress != nil {
			in.cfg.OnProgress(Progress{Done: done, Total: total, Result: res})
		}
		in.mu.Unlock()
		if res.Err != nil && cancel != nil {
			cancel()
		}
		return res.Err
	})
	// Jobs skipped by cancellation never ran runJob; surface the context
	// error in their results.
	for seq, err := range errs {
		if err != nil && results[seq].Err == nil {
			results[seq] = Result{Seq: seq, Name: jobs[seq].Video.Name, Err: err}
		}
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	if !in.cfg.ContinueOnError {
		// The internal fail-fast cancel makes racing jobs report
		// context.Canceled; surface the failure that caused the stop, not
		// the cancellations it induced.
		var canceled error
		for _, err := range errs {
			switch {
			case err == nil:
			case errors.Is(err, context.Canceled):
				if canceled == nil {
					canceled = err
				}
			default:
				return results, err
			}
		}
		return results, canceled
	}
	return results, nil
}

func (in *Ingestor) runJob(ctx context.Context, seq int, job Job) Result {
	res := Result{Seq: seq, Name: job.Video.Name}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	start := time.Now()
	v, frames := job.Video, job.Frames
	if job.Open != nil {
		var err error
		v, frames, err = job.Open()
		if err != nil {
			res.Err = fmt.Errorf("pipeline: job %d (%s): %w", seq, res.Name, err)
			res.Duration = time.Since(start)
			return res
		}
		res.Name = v.Name
	}
	if len(frames) == 0 {
		res.Err = fmt.Errorf("pipeline: job %d (%s): no frames", seq, res.Name)
		res.Duration = time.Since(start)
		return res
	}
	parse, err := in.engine.Process(v, frames)
	if err != nil {
		res.Err = fmt.Errorf("pipeline: job %d (%s): %w", seq, res.Name, err)
		res.Duration = time.Since(start)
		return res
	}
	vid, err := in.sharded.Commit(seq, func(idx *core.MetaIndex) (int64, error) {
		return fde.IndexResult(parse, idx)
	})
	if err != nil {
		res.Err = fmt.Errorf("pipeline: job %d (%s): %w", seq, res.Name, err)
		res.Duration = time.Since(start)
		return res
	}
	res.VideoID = vid
	res.Frames = len(frames)
	res.Duration = time.Since(start)
	return res
}

// MergeInto replays all committed parses into dst in job order and returns
// the job-sequence -> merged-video-ID mapping.
func (in *Ingestor) MergeInto(dst *core.MetaIndex) (map[int]int64, error) {
	return in.sharded.MergeInto(dst)
}
