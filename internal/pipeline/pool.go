package pipeline

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a worker-count option: values < 1 select GOMAXPROCS.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(ctx, i) for every i in [0, n) across a pool of workers
// goroutines and returns the per-item errors. Cancellation is cooperative:
// once ctx is done no new items are dispatched — items never started report
// ctx.Err() — but items already in flight run to completion, so partial
// work remains observable. ForEach itself never fails; inspect the returned
// slice (or FirstError) for item outcomes.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	items := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range items {
				errs[i] = fn(ctx, i)
			}
		}()
	}
	i := 0
dispatch:
	for ; i < n; i++ {
		select {
		case items <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(items)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for ; i < n; i++ {
			errs[i] = err
		}
	}
	return errs
}

// FirstError returns the lowest-index non-nil error, or nil.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
