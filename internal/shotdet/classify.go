package shotdet

import (
	"fmt"

	"repro/internal/frame"
)

// Class is the category assigned to a shot. The names match the four
// classes of the paper: tennis (court), close-up, audience, other.
type Class int

// Shot classes.
const (
	ClassOther Class = iota
	ClassTennis
	ClassCloseUp
	ClassAudience
)

// String returns the lowercase class name.
func (c Class) String() string {
	switch c {
	case ClassTennis:
		return "tennis"
	case ClassCloseUp:
		return "close-up"
	case ClassAudience:
		return "audience"
	default:
		return "other"
	}
}

// ParseClass converts a class name to a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "tennis":
		return ClassTennis, nil
	case "close-up", "closeup":
		return ClassCloseUp, nil
	case "audience":
		return ClassAudience, nil
	case "other":
		return ClassOther, nil
	}
	return ClassOther, fmt.Errorf("shotdet: unknown class %q", s)
}

// Features holds the per-frame (or shot-aggregated) measurements the
// classifier uses: the paper names the dominant colour, the amount of skin
// coloured pixels, and "entropy characteristics, mean and variance".
type Features struct {
	// Dominant is the most common quantized colour.
	Dominant frame.RGB
	// DominantShare is the fraction of pixels in the dominant colour's
	// histogram cell.
	DominantShare float64
	// CourtShare is the fraction of pixels within CourtTolerance of the
	// classifier's court colour.
	CourtShare float64
	// SkinRatio is the fraction of skin-coloured pixels.
	SkinRatio float64
	// SkinBlob is the fraction of the frame covered by the largest
	// connected skin-coloured region (after morphological opening). A
	// close-up face is one large blob; the incidental skin of a crowd is
	// speckle that opening removes. This disambiguates close-ups from
	// audience shots, both of which may contain many skin pixels.
	SkinBlob float64
	// Entropy is the colour-histogram entropy in bits.
	Entropy float64
	// Mean and Variance are luminance statistics.
	Mean, Variance float64
}

// ClassifierConfig tunes the shot classifier.
type ClassifierConfig struct {
	// CourtColor is the reference playing-surface colour. Estimate it from
	// the corpus with EstimateCourtColor, or supply a calibrated value.
	CourtColor frame.RGB
	// CourtTolerance is the per-colour Euclidean distance within which a
	// pixel counts as court-coloured (default 60).
	CourtTolerance float64
	// CourtShareMin is the minimum court-coloured fraction for a tennis
	// shot (default 0.35).
	CourtShareMin float64
	// SkinRatioMin is the minimum skin fraction for a close-up
	// (default 0.12).
	SkinRatioMin float64
	// SkinBlobMin is the minimum largest-skin-blob share for a close-up
	// (default 0.05).
	SkinBlobMin float64
	// EntropyMin is the minimum colour entropy (bits) for an audience shot
	// (default 6.0).
	EntropyMin float64
	// Bins is the histogram resolution (default 8).
	Bins int
	// SampleFrames is how many frames of a shot are sampled and averaged
	// when classifying a whole shot (default 5).
	SampleFrames int
}

// DefaultClassifierConfig returns the tuned thresholds used by the
// experiments. The court colour must still be set (or estimated).
func DefaultClassifierConfig(court frame.RGB) ClassifierConfig {
	return ClassifierConfig{
		CourtColor:     court,
		CourtTolerance: 60,
		CourtShareMin:  0.35,
		SkinRatioMin:   0.12,
		SkinBlobMin:    0.05,
		EntropyMin:     6.0,
		Bins:           8,
		SampleFrames:   5,
	}
}

func (c ClassifierConfig) withDefaults() ClassifierConfig {
	if c.CourtTolerance == 0 {
		c.CourtTolerance = 60
	}
	if c.CourtShareMin == 0 {
		c.CourtShareMin = 0.35
	}
	if c.SkinRatioMin == 0 {
		c.SkinRatioMin = 0.12
	}
	if c.SkinBlobMin == 0 {
		c.SkinBlobMin = 0.05
	}
	if c.EntropyMin == 0 {
		c.EntropyMin = 6.0
	}
	if c.Bins == 0 {
		c.Bins = 8
	}
	if c.SampleFrames == 0 {
		c.SampleFrames = 5
	}
	return c
}

// Classifier assigns shot classes from features using the decision rule of
// the paper: court shots by dominant colour, close-ups by skin fraction,
// audience by entropy, otherwise other.
type Classifier struct {
	cfg ClassifierConfig
}

// NewClassifier builds a classifier with the given configuration.
func NewClassifier(cfg ClassifierConfig) *Classifier {
	return &Classifier{cfg: cfg.withDefaults()}
}

// ExtractFeatures measures the classification features of a single frame.
func (c *Classifier) ExtractFeatures(im *frame.Image) Features {
	h := frame.HistogramOf(im, c.cfg.Bins)
	dom, share := h.Peak()
	g := frame.GrayHistogramOf(im)
	blob := 0.0
	if comp, ok := frame.SkinMask(im).Open().Largest(); ok {
		blob = float64(comp.Area) / float64(im.W*im.H)
	}
	return Features{
		Dominant:      dom,
		DominantShare: share,
		CourtShare:    c.courtShare(im),
		SkinRatio:     frame.SkinRatio(im),
		SkinBlob:      blob,
		Entropy:       h.Entropy(),
		Mean:          g.Mean(),
		Variance:      g.Variance(),
	}
}

// courtShare returns the fraction of pixels within CourtTolerance of the
// reference court colour.
func (c *Classifier) courtShare(im *frame.Image) float64 {
	n := im.W * im.H
	if n == 0 {
		return 0
	}
	cnt := 0
	for i := 0; i < len(im.Pix); i += 3 {
		px := frame.RGB{R: im.Pix[i], G: im.Pix[i+1], B: im.Pix[i+2]}
		if frame.ColorDist(px, c.cfg.CourtColor) <= c.cfg.CourtTolerance {
			cnt++
		}
	}
	return float64(cnt) / float64(n)
}

// Classify applies the decision rule to a feature vector.
func (c *Classifier) Classify(f Features) Class {
	switch {
	case f.CourtShare >= c.cfg.CourtShareMin:
		return ClassTennis
	case f.SkinBlob >= c.cfg.SkinBlobMin && f.SkinRatio >= c.cfg.SkinRatioMin:
		return ClassCloseUp
	case f.Entropy >= c.cfg.EntropyMin:
		return ClassAudience
	default:
		return ClassOther
	}
}

// ClassifyFrame extracts features and classifies one frame.
func (c *Classifier) ClassifyFrame(im *frame.Image) (Class, Features) {
	f := c.ExtractFeatures(im)
	return c.Classify(f), f
}

// ClassifyShot samples SampleFrames frames evenly across [start, end),
// averages their features, and classifies the aggregate. Averaging smooths
// over transient occlusions within the shot.
func (c *Classifier) ClassifyShot(frames []*frame.Image, start, end int) (Class, Features) {
	if start < 0 {
		start = 0
	}
	if end > len(frames) {
		end = len(frames)
	}
	if start >= end {
		return ClassOther, Features{}
	}
	n := c.cfg.SampleFrames
	if n > end-start {
		n = end - start
	}
	var agg Features
	for k := 0; k < n; k++ {
		idx := start + (end-start-1)*k/maxInt(n-1, 1)
		f := c.ExtractFeatures(frames[idx])
		agg.DominantShare += f.DominantShare
		agg.CourtShare += f.CourtShare
		agg.SkinRatio += f.SkinRatio
		agg.SkinBlob += f.SkinBlob
		agg.Entropy += f.Entropy
		agg.Mean += f.Mean
		agg.Variance += f.Variance
	}
	inv := 1 / float64(n)
	agg.DominantShare *= inv
	agg.CourtShare *= inv
	agg.SkinRatio *= inv
	agg.SkinBlob *= inv
	agg.Entropy *= inv
	agg.Mean *= inv
	agg.Variance *= inv
	// Dominant colour of the middle sample is representative.
	mid := c.ExtractFeatures(frames[(start+end)/2])
	agg.Dominant = mid.Dominant
	return c.Classify(agg), agg
}

// EstimateCourtColor scans sample frames and returns the modal dominant
// colour among frames where one colour holds at least minShare of pixels —
// over broadcast footage this converges on the court surface, mirroring the
// paper's "estimated statistics of the tennis field color". Only chromatic
// candidates (HSV saturation >= 0.25) are counted: playing surfaces (green,
// blue, clay) are saturated, while the near-grey backgrounds of close-ups
// and crowd shots are not, and would otherwise outvote the court in videos
// with few playing shots. The boolean is false if no frame had a
// sufficiently dominant chromatic colour.
func EstimateCourtColor(frames []*frame.Image, bins int, minShare float64) (frame.RGB, bool) {
	if bins == 0 {
		bins = 8
	}
	if minShare == 0 {
		minShare = 0.3
	}
	const minSaturation = 0.25
	votes := map[frame.RGB]int{}
	step := len(frames)/64 + 1
	for i := 0; i < len(frames); i += step {
		h := frame.HistogramOf(frames[i], bins)
		dom, share := h.Peak()
		if share >= minShare && frame.ToHSV(dom).S >= minSaturation {
			votes[dom]++
		}
	}
	var best frame.RGB
	bestN := 0
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best, bestN > 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
