// Package shotdet implements the paper's "segment detector": it partitions
// a video into shots using colour-histogram differences between
// neighbouring frames, and classifies each shot into one of four categories
// — tennis (court), close-up, audience, other — from the dominant colour,
// the amount of skin-coloured pixels, and entropy/mean/variance
// characteristics, exactly the feature set the paper describes.
//
// In the original system this detector ran as an external (black-box)
// program driven by the Feature Detector Engine; here the same
// implementation is callable in-process (white-box) and wrapped by
// cmd/segdet as a stdio black-box for the FDE.
package shotdet

import (
	"fmt"
	"math"

	"repro/internal/frame"
)

// Metric selects the histogram distance used for boundary detection.
type Metric int

// Supported histogram distances.
const (
	// MetricL1 is the sum of absolute bin differences (range [0, 2]).
	MetricL1 Metric = iota
	// MetricChiSquare is the chi-square distance (range [0, 2]).
	MetricChiSquare
)

// String names the metric.
func (m Metric) String() string {
	if m == MetricChiSquare {
		return "chi2"
	}
	return "l1"
}

// Config parameterizes boundary detection.
type Config struct {
	// Bins is the number of histogram bins per channel (default 8).
	Bins int
	// Metric selects the frame-distance function.
	Metric Metric
	// Threshold is the hard-cut distance threshold (default 0.35).
	Threshold float64
	// Adaptive, when set, replaces the fixed threshold with a local one:
	// a cut requires dist > mean + AdaptiveK*std over the trailing Window
	// distances, in addition to exceeding Threshold/2 as a noise floor.
	Adaptive bool
	// AdaptiveK is the adaptive multiplier (default 5).
	AdaptiveK float64
	// Window is the trailing window length for the adaptive rule
	// (default 24).
	Window int
	// MinShotLen suppresses boundaries closer than this many frames to
	// the previous boundary (default 6).
	MinShotLen int
	// GradualLow, when > 0, enables twin-threshold gradual-transition
	// detection: a run of inter-frame distances each above GradualLow
	// whose cumulative distance from the run's anchor frame exceeds
	// Threshold is reported as a gradual boundary.
	GradualLow float64
	// Workers bounds the goroutines used by DetectBoundaries to precompute
	// per-frame histograms (< 1 selects GOMAXPROCS, 1 forces sequential).
	// The detection result is identical at any setting.
	Workers int
}

// DefaultConfig returns the tuned defaults used by the experiments.
func DefaultConfig() Config {
	return Config{
		Bins:       8,
		Metric:     MetricL1,
		Threshold:  0.35,
		AdaptiveK:  5,
		Window:     24,
		MinShotLen: 6,
	}
}

func (c Config) withDefaults() Config {
	if c.Bins == 0 {
		c.Bins = 8
	}
	if c.Threshold == 0 {
		c.Threshold = 0.35
	}
	if c.AdaptiveK == 0 {
		c.AdaptiveK = 5
	}
	if c.Window == 0 {
		c.Window = 24
	}
	if c.MinShotLen == 0 {
		c.MinShotLen = 6
	}
	return c
}

// Boundary is a detected shot transition: the first frame of the new shot.
type Boundary struct {
	// Frame is the index of the first frame after the transition.
	Frame int
	// Dist is the histogram distance that triggered the detection.
	Dist float64
	// Gradual marks boundaries found by the twin-threshold rule.
	Gradual bool
}

// Detector detects shot boundaries in streaming fashion: feed frames one at
// a time. This is the form the FDE drives.
type Detector struct {
	cfg      Config
	prevHist *frame.Histogram
	frameIdx int
	lastCut  int
	recent   []float64 // trailing distances for the adaptive rule
	// gradual-transition state
	anchorHist *frame.Histogram
	runLen     int
	// scratch is a displaced histogram no longer referenced by the
	// detector state, recycled by the streaming Feed path so steady-state
	// ingest stops allocating one histogram per frame. prevOwned marks
	// whether prevHist was allocated by Feed itself: histograms handed in
	// through FeedHistogram belong to the caller and are never recycled
	// (recycling would overwrite caller-held data on a later Feed).
	scratch   *frame.Histogram
	prevOwned bool
	// distFn caches the metric dispatch so the per-frame distance call is a
	// direct function call instead of a config compare per frame.
	distFn func(a, b *frame.Histogram) float64
}

// NewDetector creates a streaming boundary detector.
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), lastCut: 0}
}

// Feed processes the next frame and reports a boundary ending at this frame
// if one is detected. The first frame never yields a boundary. The frame's
// histogram is computed into a detector-owned scratch buffer, so streaming
// ingest allocates nothing per frame in steady state.
func (d *Detector) Feed(im *frame.Image) (Boundary, bool) {
	h := d.scratch
	d.scratch = nil
	if h == nil || h.Bins != d.cfg.Bins {
		h = frame.NewHistogram(d.cfg.Bins)
	}
	h.SetImage(im)
	prev := d.prevHist
	prevWasOwned := d.prevOwned
	b, ok := d.FeedHistogram(h) // clears prevOwned: the public path is caller-owned
	d.prevOwned = true          // ...but this h is Feed's own
	// The displaced previous histogram can be reused for the next frame if
	// Feed allocated it and the detector no longer holds it as the
	// gradual-transition anchor.
	if prevWasOwned && prev != nil && prev != d.anchorHist && prev != d.prevHist {
		d.scratch = prev
	}
	return b, ok
}

// FeedHistogram is Feed for a precomputed frame histogram (with the
// detector's configured bin count). It lets callers extract histograms in
// parallel and keep only the cheap boundary decision sequential.
func (d *Detector) FeedHistogram(h *frame.Histogram) (Boundary, bool) {
	idx := d.frameIdx
	d.frameIdx++
	d.prevOwned = false // h belongs to the caller; Feed overrides after its own calls
	if d.prevHist == nil {
		d.prevHist = h
		return Boundary{}, false
	}
	dist := d.distance(d.prevHist, h)
	prev := d.prevHist
	d.prevHist = h

	cut := false
	if d.cfg.Adaptive {
		mean, std := meanStd(d.recent)
		floor := d.cfg.Threshold / 2
		if len(d.recent) >= d.cfg.Window/2 && dist > mean+d.cfg.AdaptiveK*std && dist > floor {
			cut = true
		}
		if !cut {
			// Cut distances are outliers by definition; admitting them
			// into the window would inflate the local statistics and mask
			// cuts that follow shortly after.
			d.recent = append(d.recent, dist)
			if len(d.recent) > d.cfg.Window {
				d.recent = d.recent[1:]
			}
		}
	} else if dist > d.cfg.Threshold {
		cut = true
	}
	if cut {
		d.anchorHist, d.runLen = nil, 0
		if idx-d.lastCut < d.cfg.MinShotLen {
			return Boundary{}, false
		}
		d.lastCut = idx
		return Boundary{Frame: idx, Dist: dist}, true
	}

	// Twin-threshold gradual detection: while the inter-frame distance
	// stays above GradualLow a transition may be in progress; when the
	// distance settles back below GradualLow the transition has ended, and
	// the accumulated distance from the anchor (last stable frame) to the
	// current frame decides whether it was a real boundary.
	if d.cfg.GradualLow > 0 {
		if dist > d.cfg.GradualLow {
			if d.anchorHist == nil {
				d.anchorHist = prev
				d.runLen = 0
			}
			d.runLen++
		} else if d.anchorHist != nil {
			cum := d.distance(d.anchorHist, h)
			runLen := d.runLen
			d.anchorHist, d.runLen = nil, 0
			if cum > d.cfg.Threshold && runLen >= 2 && idx-d.lastCut >= d.cfg.MinShotLen {
				d.lastCut = idx
				return Boundary{Frame: idx, Dist: cum, Gradual: true}, true
			}
		}
	}
	return Boundary{}, false
}

func (d *Detector) distance(a, b *frame.Histogram) float64 {
	if d.distFn == nil {
		// Lazy so zero-value and struct-literal detectors (the Sweeper
		// resets itself this way every run) pick the metric up on first use.
		if d.cfg.Metric == MetricChiSquare {
			d.distFn = (*frame.Histogram).ChiSquare
		} else {
			d.distFn = (*frame.Histogram).L1Dist
		}
	}
	return d.distFn(a, b)
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// histChunk bounds how many histograms DetectBoundaries materializes at
// once: large enough to keep every worker busy, small enough that memory
// stays O(chunk) instead of O(video) even for hour-long inputs.
const histChunk = 1024

// DetectBoundaries runs the detector over a frame slice. Histogram
// extraction — the dominant cost — is fanned out over cfg.Workers
// goroutines, one bounded chunk at a time; the stateful boundary decision
// then consumes the histograms in frame order, so the result is identical
// to the streaming path.
func DetectBoundaries(frames []*frame.Image, cfg Config) []Boundary {
	var s Sweeper
	return s.Detect(frames, cfg)
}

// Sweeper amortizes DetectBoundaries' scratch — the chunk histogram buffer
// and the adaptive-rule window — across repeated detection runs, so a
// threshold sweep over the same footage pays the per-frame histogram
// allocations once instead of once per configuration. The zero value is
// ready to use. A Sweeper is not safe for concurrent use.
type Sweeper struct {
	d     Detector
	hists []*frame.Histogram // chunk scratch, recycled across chunks and runs
}

// Detect is DetectBoundaries through the Sweeper's recycled scratch: the
// result is identical for every configuration and every reuse pattern,
// only the allocation profile changes.
func (s *Sweeper) Detect(frames []*frame.Image, cfg Config) []Boundary {
	s.d = Detector{cfg: cfg.withDefaults(), recent: s.d.recent[:0]}
	d := &s.d
	var out []Boundary
	for start := 0; start < len(frames); start += histChunk {
		end := start + histChunk
		if end > len(frames) {
			end = len(frames)
		}
		s.hists = frame.HistogramsInto(s.hists, frames[start:end], d.cfg.Bins, cfg.Workers)
		for _, h := range s.hists {
			if b, ok := d.FeedHistogram(h); ok {
				out = append(out, b)
			}
		}
		// Every histogram of this chunk can be overwritten by the next one
		// except the two the detector still references: the previous frame's
		// histogram and the gradual-transition anchor.
		for i, h := range s.hists {
			if h == d.prevHist || h == d.anchorHist {
				s.hists[i] = nil
			}
		}
	}
	return out
}

// Shot is a detected, classified shot: frames [Start, End).
type Shot struct {
	Start, End int
	Class      Class
	// Features holds the aggregated classification features.
	Features Features
}

// Len returns the shot length in frames.
func (s Shot) Len() int { return s.End - s.Start }

// String renders the shot compactly for logs.
func (s Shot) String() string {
	return fmt.Sprintf("[%d,%d) %s", s.Start, s.End, s.Class)
}

// Segment splits frames into shots at the detected boundaries. The class of
// every shot is ClassOther until classified (see SegmentAndClassify).
func Segment(frames []*frame.Image, cfg Config) []Shot {
	bs := DetectBoundaries(frames, cfg)
	var shots []Shot
	start := 0
	for _, b := range bs {
		shots = append(shots, Shot{Start: start, End: b.Frame})
		start = b.Frame
	}
	if start < len(frames) {
		shots = append(shots, Shot{Start: start, End: len(frames)})
	}
	return shots
}

// SegmentAndClassify segments the video and classifies every shot using the
// given classifier. This is the complete "segment detector" of the paper.
func SegmentAndClassify(frames []*frame.Image, cfg Config, cls *Classifier) []Shot {
	shots := Segment(frames, cfg)
	for i := range shots {
		shots[i].Class, shots[i].Features = cls.ClassifyShot(frames, shots[i].Start, shots[i].End)
	}
	return shots
}
