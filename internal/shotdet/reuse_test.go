package shotdet

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/synth"
)

// feedReference is the pre-reuse streaming path: one fresh histogram per
// frame, no scratch recycling. The reuse paths must match it exactly.
func feedReference(frames []*frame.Image, cfg Config) []Boundary {
	d := NewDetector(cfg)
	var out []Boundary
	for _, im := range frames {
		if b, ok := d.FeedHistogram(frame.HistogramOf(im, d.cfg.Bins)); ok {
			out = append(out, b)
		}
	}
	return out
}

// TestFeedReuseMatchesReference: the scratch-recycling Feed path must be
// boundary-identical to fresh-histogram feeding for every detector mode —
// in particular with gradual detection on, where the detector retains the
// anchor histogram across frames and a wrong recycle would corrupt it.
func TestFeedReuseMatchesReference(t *testing.T) {
	cfg := synth.DefaultConfig(77)
	cfg.Shots = 6
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dcfg := range []Config{
		DefaultConfig(),
		{Adaptive: true},
		{GradualLow: 0.08},
		{GradualLow: 0.02, Threshold: 0.2}, // low bar: anchors held often
	} {
		want := feedReference(v.Frames, dcfg)
		d := NewDetector(dcfg)
		var got []Boundary
		for _, im := range v.Frames {
			if b, ok := d.Feed(im); ok {
				got = append(got, b)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("cfg=%+v: %d boundaries, want %d", dcfg, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cfg=%+v boundary %d: %+v, want %+v", dcfg, i, got[i], want[i])
			}
		}
	}
}

// TestDetectBoundariesChunkRecycleMatchesReference drives DetectBoundaries
// across multiple chunks (frames > histChunk) so chunk recycling actually
// exercises the prev/anchor retention logic, and cross-checks the result
// against the per-frame reference.
func TestDetectBoundariesChunkRecycleMatchesReference(t *testing.T) {
	cfg := synth.DefaultConfig(78)
	cfg.Shots = 12
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := v.Frames
	// Tile the video past one chunk so at least two chunk recycles happen.
	for len(frames) <= 2*histChunk {
		frames = append(frames, v.Frames...)
	}
	for _, dcfg := range []Config{DefaultConfig(), {GradualLow: 0.08}} {
		want := feedReference(frames, dcfg)
		got := DetectBoundaries(frames, dcfg)
		if len(got) != len(want) {
			t.Fatalf("cfg=%+v: %d boundaries, want %d", dcfg, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cfg=%+v boundary %d: %+v, want %+v", dcfg, i, got[i], want[i])
			}
		}
	}
}

// TestFeedNeverRecyclesCallerHistograms: mixing FeedHistogram (caller-owned
// histograms) and Feed (detector-owned scratch) on one detector must never
// overwrite a histogram the caller handed in — only Feed's own allocations
// are recycled.
func TestFeedNeverRecyclesCallerHistograms(t *testing.T) {
	cfg := synth.DefaultConfig(80)
	cfg.Shots = 3
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector(DefaultConfig())
	d.Feed(v.Frames[0])
	// Caller-owned histogram enters through the public precomputed path.
	callerHist := frame.HistogramOf(v.Frames[1], d.cfg.Bins)
	want := append([]float64(nil), callerHist.Counts...)
	d.FeedHistogram(callerHist)
	// Subsequent Feed calls displace callerHist from prevHist; they must
	// not adopt it as scratch and overwrite it.
	for _, im := range v.Frames[2:8] {
		d.Feed(im)
	}
	for i, c := range callerHist.Counts {
		if c != want[i] {
			t.Fatalf("caller-owned histogram mutated at bin %d: %v -> %v", i, want[i], c)
		}
	}
}

// TestFeedSteadyStateAllocs: after warm-up the streaming Feed path must not
// allocate a histogram per frame.
func TestFeedSteadyStateAllocs(t *testing.T) {
	cfg := synth.DefaultConfig(79)
	cfg.Shots = 2
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector(DefaultConfig())
	d.Feed(v.Frames[0])
	d.Feed(v.Frames[1])
	im := v.Frames[2]
	allocs := testing.AllocsPerRun(100, func() {
		d.Feed(im)
	})
	// The adaptive window append and boundary bookkeeping may allocate
	// occasionally; the per-frame histogram (the hot 4 KB) must not.
	if allocs > 0.5 {
		t.Fatalf("steady-state Feed allocates %.2f objects/frame", allocs)
	}
}

// TestSweeperMatchesDetectBoundaries: a recycled Sweeper must answer every
// configuration byte-identically to a fresh DetectBoundaries, in any order
// and across videos — the E2 threshold sweep is exactly this access
// pattern. The multi-chunk case exercises buffer reuse across both chunk
// boundaries and runs.
func TestSweeperMatchesDetectBoundaries(t *testing.T) {
	mk := func(seed int64, shots int) []*frame.Image {
		cfg := synth.DefaultConfig(seed)
		cfg.Shots = shots
		v, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return v.Frames
	}
	short := mk(81, 8)
	other := mk(83, 5)
	long := short
	for len(long) <= 2*histChunk {
		long = append(long, short...)
	}
	configs := []Config{
		DefaultConfig(),
		{Threshold: 0.05},
		{Threshold: 1.6},
		{Adaptive: true},
		{GradualLow: 0.08},
		DefaultConfig(), // repeat: state from earlier configs must not leak
	}
	var sw Sweeper
	for round := 0; round < 2; round++ {
		for _, frames := range [][]*frame.Image{short, other, long, short} {
			for ci, dcfg := range configs {
				want := DetectBoundaries(frames, dcfg)
				got := sw.Detect(frames, dcfg)
				if len(got) != len(want) {
					t.Fatalf("round=%d cfg=%d frames=%d: %d boundaries, want %d",
						round, ci, len(frames), len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("round=%d cfg=%d boundary %d: %+v, want %+v",
							round, ci, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSweeperSteadyStateAllocs encodes the E2 acceptance bound directly: a
// warm Sweeper run must allocate at least 5x fewer objects than a fresh
// DetectBoundaries over the same frames.
func TestSweeperSteadyStateAllocs(t *testing.T) {
	cfg := synth.DefaultConfig(82)
	cfg.Shots = 4
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := DefaultConfig()
	dcfg.Workers = 1 // keep goroutine spawns out of the alloc counts
	var sw Sweeper
	sw.Detect(v.Frames, dcfg) // warm the chunk buffer
	warm := testing.AllocsPerRun(20, func() { sw.Detect(v.Frames, dcfg) })
	fresh := testing.AllocsPerRun(5, func() { DetectBoundaries(v.Frames, dcfg) })
	if warm*5 > fresh {
		t.Fatalf("warm Sweeper allocates %.1f objects/run vs %.1f fresh (< 5x reduction)", warm, fresh)
	}
}

// TestSweeperDetectAbsoluteAllocs bounds the warm E2-sweep loop absolutely:
// once the chunk buffer is warm, a Detect run allocates only the boundary
// output slice — a handful of objects, independent of frame count. This is
// the guard for the restructured histogram kernel: a regression that
// reintroduces per-frame or per-bin allocation trips it immediately.
func TestSweeperDetectAbsoluteAllocs(t *testing.T) {
	cfg := synth.DefaultConfig(82)
	cfg.Shots = 4
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := DefaultConfig()
	dcfg.Workers = 1 // keep goroutine spawns out of the alloc counts
	var sw Sweeper
	sw.Detect(v.Frames, dcfg) // warm the chunk buffer
	allocs := testing.AllocsPerRun(20, func() { sw.Detect(v.Frames, dcfg) })
	if allocs > 8 {
		t.Fatalf("warm Sweeper.Detect allocates %.1f objects/run over %d frames, want <= 8", allocs, len(v.Frames))
	}
}
