package shotdet

import (
	"testing"

	"repro/internal/synth"
)

// DetectBoundaries must produce identical boundaries at any worker count:
// histogram extraction is parallel but the decision stays sequential.
func TestDetectBoundariesWorkerInvariance(t *testing.T) {
	cfg := synth.DefaultConfig(42)
	cfg.Shots = 5
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dcfg := range []Config{
		DefaultConfig(),
		{Adaptive: true},
		{GradualLow: 0.08},
	} {
		base := dcfg
		base.Workers = 1
		want := DetectBoundaries(v.Frames, base)
		for _, workers := range []int{0, 2, 8} {
			par := dcfg
			par.Workers = workers
			got := DetectBoundaries(v.Frames, par)
			if len(got) != len(want) {
				t.Fatalf("cfg=%+v workers=%d: %d boundaries, want %d", dcfg, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cfg=%+v workers=%d: boundary %d = %+v, want %+v", dcfg, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// The streaming Feed path and the precomputed FeedHistogram path must agree.
func TestFeedHistogramMatchesFeed(t *testing.T) {
	cfg := synth.DefaultConfig(43)
	cfg.Shots = 4
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := NewDetector(DefaultConfig())
	var fromStream []Boundary
	for _, im := range v.Frames {
		if b, ok := stream.Feed(im); ok {
			fromStream = append(fromStream, b)
		}
	}
	fromBatch := DetectBoundaries(v.Frames, DefaultConfig())
	if len(fromStream) != len(fromBatch) {
		t.Fatalf("stream %d boundaries, batch %d", len(fromStream), len(fromBatch))
	}
	for i := range fromStream {
		if fromStream[i] != fromBatch[i] {
			t.Fatalf("boundary %d: stream %+v batch %+v", i, fromStream[i], fromBatch[i])
		}
	}
}
