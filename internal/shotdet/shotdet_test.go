package shotdet

import (
	"math/rand"
	"testing"

	"repro/internal/frame"
	"repro/internal/synth"
)

func genVideo(t *testing.T, seed int64, shots int) *synth.Video {
	t.Helper()
	cfg := synth.DefaultConfig(seed)
	cfg.Shots = shots
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDetectBoundariesExact(t *testing.T) {
	v := genVideo(t, 21, 8)
	got := DetectBoundaries(v.Frames, DefaultConfig())
	want := v.Truth.Boundaries()
	if len(got) != len(want) {
		t.Fatalf("detected %d boundaries, want %d (got %v want %v)", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Frame != want[i] {
			t.Errorf("boundary %d at frame %d, want %d", i, got[i].Frame, want[i])
		}
		if got[i].Gradual {
			t.Errorf("hard cut %d reported gradual", i)
		}
	}
}

func TestAdaptiveThresholdDetects(t *testing.T) {
	v := genVideo(t, 22, 6)
	cfg := DefaultConfig()
	cfg.Adaptive = true
	got := DetectBoundaries(v.Frames, cfg)
	want := v.Truth.Boundaries()
	if len(got) != len(want) {
		t.Fatalf("adaptive detected %d boundaries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Frame != want[i] {
			t.Errorf("adaptive boundary %d at %d, want %d", i, got[i].Frame, want[i])
		}
	}
}

func TestChiSquareMetricDetects(t *testing.T) {
	v := genVideo(t, 23, 6)
	cfg := DefaultConfig()
	cfg.Metric = MetricChiSquare
	got := DetectBoundaries(v.Frames, cfg)
	if len(got) != len(v.Truth.Boundaries()) {
		t.Fatalf("chi2 detected %d boundaries, want %d", len(got), len(v.Truth.Boundaries()))
	}
}

func TestNoFalseCutsOnSingleShot(t *testing.T) {
	cfg := synth.DefaultConfig(31)
	frames, _, _, _, err := synth.RenderTennisShot(cfg, "rally", 120)
	if err != nil {
		t.Fatal(err)
	}
	if got := DetectBoundaries(frames, DefaultConfig()); len(got) != 0 {
		t.Fatalf("false cuts on continuous shot: %v", got)
	}
}

func TestMinShotLenSuppression(t *testing.T) {
	// Two hard cuts 3 frames apart; MinShotLen 6 must suppress the second.
	a := frame.New(32, 32)
	a.Fill(frame.RGB{R: 200, G: 0, B: 0})
	b := frame.New(32, 32)
	b.Fill(frame.RGB{R: 0, G: 200, B: 0})
	c := frame.New(32, 32)
	c.Fill(frame.RGB{R: 0, G: 0, B: 200})
	var frames []*frame.Image
	for i := 0; i < 10; i++ {
		frames = append(frames, a.Clone())
	}
	for i := 0; i < 3; i++ {
		frames = append(frames, b.Clone())
	}
	for i := 0; i < 10; i++ {
		frames = append(frames, c.Clone())
	}
	got := DetectBoundaries(frames, DefaultConfig())
	if len(got) != 1 || got[0].Frame != 10 {
		t.Fatalf("got %v, want single cut at 10", got)
	}
}

func TestGradualTransitionDetected(t *testing.T) {
	// A 10-frame top-to-bottom wipe between two scenes; each step replaces
	// ~10% of pixels, keeping the per-frame distance below the hard
	// threshold while the cumulative distance crosses it.
	colA := frame.RGB{R: 30, G: 120, B: 50}
	colB := frame.RGB{R: 90, G: 90, B: 160}
	a := frame.New(48, 48)
	a.Fill(colA)
	b := frame.New(48, 48)
	b.Fill(colB)
	var frames []*frame.Image
	for i := 0; i < 15; i++ {
		frames = append(frames, a.Clone())
	}
	const dn = 10
	for i := 1; i <= dn; i++ {
		im := a.Clone()
		im.FillRect(frame.Rect{X0: 0, Y0: 0, X1: 48, Y1: 48 * i / dn}, colB)
		frames = append(frames, im)
	}
	for i := 0; i < 15; i++ {
		frames = append(frames, b.Clone())
	}
	cfg := DefaultConfig()
	cfg.GradualLow = 0.05
	got := DetectBoundaries(frames, cfg)
	if len(got) != 1 {
		t.Fatalf("got %d boundaries %v, want exactly 1", len(got), got)
	}
	bd := got[0]
	if !bd.Gradual {
		t.Fatalf("wipe misdetected as hard cut at %d", bd.Frame)
	}
	if bd.Frame < 15 || bd.Frame > 15+dn+1 {
		t.Fatalf("gradual boundary at %d, want within wipe [15,%d]", bd.Frame, 15+dn+1)
	}
	// Without GradualLow the wipe must be invisible.
	if got := DetectBoundaries(frames, DefaultConfig()); len(got) != 0 {
		t.Fatalf("wipe triggered hard-cut detector: %v", got)
	}
}

func TestSegmentCoversAllFrames(t *testing.T) {
	v := genVideo(t, 25, 7)
	shots := Segment(v.Frames, DefaultConfig())
	pos := 0
	for _, s := range shots {
		if s.Start != pos {
			t.Fatalf("shot starts at %d, want %d", s.Start, pos)
		}
		pos = s.End
	}
	if pos != len(v.Frames) {
		t.Fatalf("shots cover %d frames of %d", pos, len(v.Frames))
	}
}

func TestSegmentEmptyInput(t *testing.T) {
	if shots := Segment(nil, DefaultConfig()); len(shots) != 0 {
		t.Fatalf("empty video produced shots: %v", shots)
	}
}

func TestClassifyShotsMatchTruth(t *testing.T) {
	v := genVideo(t, 26, 12)
	cls := NewClassifier(DefaultClassifierConfig(synth.CourtColor))
	shots := SegmentAndClassify(v.Frames, DefaultConfig(), cls)
	if len(shots) != len(v.Truth.Shots) {
		t.Fatalf("detected %d shots, want %d", len(shots), len(v.Truth.Shots))
	}
	for i, s := range shots {
		want := v.Truth.Shots[i].Class.String()
		if s.Class.String() != want {
			t.Errorf("shot %d [%d,%d): classified %s, want %s (features %+v)",
				i, s.Start, s.End, s.Class, want, s.Features)
		}
	}
}

func TestClassifierRules(t *testing.T) {
	cls := NewClassifier(DefaultClassifierConfig(synth.CourtColor))
	cases := []struct {
		f    Features
		want Class
	}{
		{Features{CourtShare: 0.6}, ClassTennis},
		{Features{CourtShare: 0.1, SkinRatio: 0.3, SkinBlob: 0.2}, ClassCloseUp},
		{Features{CourtShare: 0.1, SkinRatio: 0.02, Entropy: 9}, ClassAudience},
		{Features{CourtShare: 0.1, SkinRatio: 0.02, Entropy: 3}, ClassOther},
		// Court dominates even with skin present (player close to camera
		// on court).
		{Features{CourtShare: 0.5, SkinRatio: 0.2, SkinBlob: 0.1}, ClassTennis},
		// Crowd skin is speckle: plenty of skin pixels but no single blob,
		// so high entropy wins.
		{Features{SkinRatio: 0.2, SkinBlob: 0.004, Entropy: 8}, ClassAudience},
	}
	for i, c := range cases {
		if got := cls.Classify(c.f); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestClassifyShotDegenerateRanges(t *testing.T) {
	v := genVideo(t, 27, 3)
	cls := NewClassifier(DefaultClassifierConfig(synth.CourtColor))
	if c, _ := cls.ClassifyShot(v.Frames, 5, 5); c != ClassOther {
		t.Fatal("empty range should classify as other")
	}
	if c, _ := cls.ClassifyShot(v.Frames, -10, 1); c == ClassOther {
		t.Fatal("clamped range lost the first tennis frame")
	}
}

func TestEstimateCourtColor(t *testing.T) {
	v := genVideo(t, 28, 10)
	got, ok := EstimateCourtColor(v.Frames, 8, 0.3)
	if !ok {
		t.Fatal("no court colour estimated")
	}
	if frame.ColorDist(got, synth.CourtColor) > 40 {
		t.Fatalf("estimated court colour %v too far from true %v", got, synth.CourtColor)
	}
}

func TestEstimateCourtColorCloseUpHeavyVideo(t *testing.T) {
	// Regression: in videos where close-ups outnumber playing shots, the
	// near-grey close-up background used to outvote the court colour (its
	// gradient midpoint cell can hold >30% of pixels). The saturation gate
	// must keep the estimate on the chromatic court surface.
	cfg := synth.DefaultConfig(501)
	cfg.Shots = 6
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := EstimateCourtColor(v.Frames, 8, 0.3)
	if !ok {
		t.Fatal("no court colour estimated")
	}
	if frame.ColorDist(got, synth.CourtColor) > 40 {
		t.Fatalf("estimate %v drifted to a non-court colour (true %v)", got, synth.CourtColor)
	}
	// And classification downstream of the estimate stays correct.
	cls := NewClassifier(DefaultClassifierConfig(got))
	for i, s := range v.Truth.Shots {
		c, _ := cls.ClassifyShot(v.Frames, s.Start, s.End)
		if c.String() != s.Class.String() {
			t.Errorf("shot %d: classified %s, want %s", i, c, s.Class)
		}
	}
}

func TestEstimateCourtColorNoDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	frames := make([]*frame.Image, 10)
	for i := range frames {
		im := frame.New(32, 32)
		im.SpeckleNoise(rng, 1)
		frames[i] = im
	}
	if _, ok := EstimateCourtColor(frames, 8, 0.3); ok {
		t.Fatal("court colour found in pure noise")
	}
}

func TestClassStringParse(t *testing.T) {
	for _, c := range []Class{ClassTennis, ClassCloseUp, ClassAudience, ClassOther} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("round trip %v failed: %v %v", c, got, err)
		}
	}
	if _, err := ParseClass("nonsense"); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestMetricString(t *testing.T) {
	if MetricL1.String() != "l1" || MetricChiSquare.String() != "chi2" {
		t.Fatal("metric names wrong")
	}
}

func TestStreamingDetectorFirstFrame(t *testing.T) {
	d := NewDetector(DefaultConfig())
	im := frame.New(16, 16)
	if _, ok := d.Feed(im); ok {
		t.Fatal("first frame yielded a boundary")
	}
}
