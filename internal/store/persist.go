package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/fsx"
)

// Binary persistence: a DB serializes to a single stream.
//
//	magic "CSDB" | uvarint tableCount | tables...
//	table: uvarint nameLen | name | uvarint colCount |
//	       cols { u8 type | uvarint nameLen | name } |
//	       uvarint rowCount | per-column vectors
//	int vectors:    zigzag varints
//	float vectors:  u64 IEEE bits
//	string vectors: uvarint len | bytes
//	bool vectors:   packed bits
const persistMagic = "CSDB"

// Serialize writes the database to w. Indexes are not persisted; rebuild
// them after loading.
func (db *DB) Serialize(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("store: write magic: %w", err)
	}
	names := db.Names()
	writeUvarint(bw, uint64(len(names)))
	for _, name := range names {
		t := db.tables[name]
		if err := t.serializeTo(bw); err != nil {
			return fmt.Errorf("store: table %q: %w", name, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

func (t *Table) serializeTo(bw *bufio.Writer) error {
	writeString(bw, t.schema.Name)
	writeUvarint(bw, uint64(len(t.schema.Columns)))
	for _, c := range t.schema.Columns {
		bw.WriteByte(byte(c.Type))
		writeString(bw, c.Name)
	}
	writeUvarint(bw, uint64(t.n))
	for ci := range t.cols {
		col := &t.cols[ci]
		switch col.typ {
		case TInt:
			for _, v := range col.ints {
				writeVarint(bw, v)
			}
		case TFloat:
			var b [8]byte
			for _, v := range col.flts {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				bw.Write(b[:])
			}
		case TString:
			for _, v := range col.strs {
				writeString(bw, v)
			}
		case TBool:
			var cur byte
			nbits := 0
			for _, v := range col.bls {
				if v {
					cur |= 1 << nbits
				}
				nbits++
				if nbits == 8 {
					bw.WriteByte(cur)
					cur, nbits = 0, 0
				}
			}
			if nbits > 0 {
				bw.WriteByte(cur)
			}
		}
	}
	return nil
}

// Deserialize reads a database written by Serialize.
func Deserialize(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: read magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("store: bad magic %q", magic)
	}
	nTables, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: table count: %w", err)
	}
	if nTables > 1<<20 {
		return nil, fmt.Errorf("store: implausible table count %d", nTables)
	}
	db := NewDB()
	for i := uint64(0); i < nTables; i++ {
		t, err := readTable(br)
		if err != nil {
			return nil, fmt.Errorf("store: table %d: %w", i, err)
		}
		if _, dup := db.tables[t.schema.Name]; dup {
			return nil, fmt.Errorf("store: table %d: %w: %q", i, ErrDupTable, t.schema.Name)
		}
		db.tables[t.schema.Name] = t
	}
	return db, nil
}

// maxPrealloc bounds speculative slice preallocation while deserializing: a
// corrupt or hostile stream can claim billions of rows in a few bytes, and
// allocating that up front would abort the process (unrecoverable OOM)
// before the row reads could fail cleanly at EOF. Columns grow by append
// past this, so memory use stays proportional to bytes actually read.
const maxPrealloc = 1 << 16

func preallocRows(n int) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

func readTable(br *bufio.Reader) (*Table, error) {
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	nCols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nCols == 0 || nCols > 1<<16 {
		return nil, fmt.Errorf("implausible column count %d", nCols)
	}
	s := Schema{Name: name}
	for c := uint64(0); c < nCols; c++ {
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if tb > byte(TBool) {
			return nil, fmt.Errorf("bad column type %d", tb)
		}
		cname, err := readString(br)
		if err != nil {
			return nil, err
		}
		s.Columns = append(s.Columns, Column{Name: cname, Type: Type(tb)})
	}
	t, err := NewTable(s)
	if err != nil {
		return nil, err
	}
	nRows64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nRows64 > 1<<32 {
		return nil, fmt.Errorf("implausible row count %d", nRows64)
	}
	nRows := int(nRows64)
	for ci := range t.cols {
		col := &t.cols[ci]
		switch col.typ {
		case TInt:
			col.ints = make([]int64, 0, preallocRows(nRows))
			for i := 0; i < nRows; i++ {
				v, err := binary.ReadVarint(br)
				if err != nil {
					return nil, err
				}
				col.ints = append(col.ints, v)
			}
		case TFloat:
			col.flts = make([]float64, 0, preallocRows(nRows))
			var b [8]byte
			for i := 0; i < nRows; i++ {
				if _, err := io.ReadFull(br, b[:]); err != nil {
					return nil, err
				}
				col.flts = append(col.flts, math.Float64frombits(binary.LittleEndian.Uint64(b[:])))
			}
		case TString:
			col.strs = make([]string, 0, preallocRows(nRows))
			for i := 0; i < nRows; i++ {
				v, err := readString(br)
				if err != nil {
					return nil, err
				}
				col.strs = append(col.strs, v)
			}
		case TBool:
			col.bls = make([]bool, 0, preallocRows(nRows))
			nBytes := (nRows + 7) / 8
			var chunk [4096]byte
			for read := 0; read < nBytes; {
				n := nBytes - read
				if n > len(chunk) {
					n = len(chunk)
				}
				if _, err := io.ReadFull(br, chunk[:n]); err != nil {
					return nil, err
				}
				for i := 0; i < n*8 && len(col.bls) < nRows; i++ {
					col.bls = append(col.bls, chunk[i/8]&(1<<(i%8)) != 0)
				}
				read += n
			}
		}
	}
	t.n = nRows
	return t, nil
}

// SaveFile durably persists the database to a file: the bytes land in a
// temp file that is fsynced and renamed over path, so a crash mid-save
// leaves either the previous file or the complete new one.
func (db *DB) SaveFile(path string) error {
	return fsx.WriteAtomic(fsx.OS, path, db.Serialize)
}

// LoadFile reads a database from a file.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return Deserialize(f)
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeVarint(bw *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeString(bw *bufio.Writer, s string) {
	writeUvarint(bw, uint64(len(s)))
	bw.WriteString(s)
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	// Chunked read: a claimed length is only paid for as bytes arrive, so a
	// corrupt header cannot force a large up-front allocation.
	remaining := int(n)
	grow := remaining
	if grow > maxPrealloc {
		grow = maxPrealloc
	}
	var sb strings.Builder
	sb.Grow(grow)
	var chunk [4096]byte
	for remaining > 0 {
		c := remaining
		if c > len(chunk) {
			c = len(chunk)
		}
		if _, err := io.ReadFull(br, chunk[:c]); err != nil {
			return "", err
		}
		sb.Write(chunk[:c])
		remaining -= c
	}
	return sb.String(), nil
}
