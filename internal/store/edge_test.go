package store

import (
	"reflect"
	"testing"
)

func TestSelectNoPredicatesReturnsAll(t *testing.T) {
	tbl, _ := NewTable(playerSchema())
	fillPlayers(t, tbl)
	rows, err := tbl.Select()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSelectOnEmptyTable(t *testing.T) {
	tbl, _ := NewTable(playerSchema())
	rows, err := tbl.Select(Eq("name", Str("x")))
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows = %v, err = %v", rows, err)
	}
	_ = tbl.CreateHashIndex("name")
	_ = tbl.CreateSortedIndex("rank")
	rows, err = tbl.Select(Eq("name", Str("x")))
	if err != nil || len(rows) != 0 {
		t.Fatalf("indexed rows = %v, err = %v", rows, err)
	}
}

func TestIndexOnMissingColumn(t *testing.T) {
	tbl, _ := NewTable(playerSchema())
	if err := tbl.CreateHashIndex("ghost"); err == nil {
		t.Fatal("hash index on missing column accepted")
	}
	if err := tbl.CreateSortedIndex("ghost"); err == nil {
		t.Fatal("sorted index on missing column accepted")
	}
}

func TestSortedIndexStringColumn(t *testing.T) {
	tbl, _ := NewTable(playerSchema())
	fillPlayers(t, tbl)
	if err := tbl.CreateSortedIndex("name"); err != nil {
		t.Fatal(err)
	}
	rows, err := tbl.Select(Ge("name", Str("n")))
	if err != nil {
		t.Fatal(err)
	}
	// navratilova and seles follow "n".
	if !reflect.DeepEqual(rows, []int{2, 4}) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHashAndSortedIndexTogether(t *testing.T) {
	tbl, _ := NewTable(playerSchema())
	fillPlayers(t, tbl)
	_ = tbl.CreateHashIndex("lefty")
	_ = tbl.CreateSortedIndex("rank")
	// Equality uses the hash index; the range predicate filters.
	rows, err := tbl.Select(Eq("lefty", Bool(true)), Gt("rank", Float(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, []int{4}) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPersistenceEmptyTable(t *testing.T) {
	db := NewDB()
	if _, err := db.Create(playerSchema()); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/empty.db"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := got.Table("players")
	if tbl.Len() != 0 {
		t.Fatalf("len = %d", tbl.Len())
	}
	// And it is usable.
	if err := tbl.Append(Int(1), Str("a"), Float(1), Bool(false)); err != nil {
		t.Fatal(err)
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := map[string]Value{
		"42":    Int(42),
		"1.5":   Float(1.5),
		"hello": Str("hello"),
		"true":  Bool(true),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("%v String = %q, want %q", v, v.String(), want)
		}
	}
}
