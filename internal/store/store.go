// Package store implements an embedded, column-oriented record store: the
// meta-index backend of the reproduction. The original system kept its
// meta-data in Monet, a main-memory DBMS built around vertical
// fragmentation (one binary association table per attribute); this package
// reproduces that flavour with typed column vectors, predicate scans,
// secondary hash and sorted indexes, and a compact binary persistence
// format — everything the Feature Detector Engine and the digital-library
// query planner need from their database layer.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Type enumerates column types.
type Type uint8

// Supported column types.
const (
	TInt Type = iota
	TFloat
	TString
	TBool
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TBool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Value is a dynamically typed cell value.
type Value struct {
	T Type
	I int64
	F float64
	S string
	B bool
}

// Int, Float, Str and Bool construct Values.
func Int(v int64) Value     { return Value{T: TInt, I: v} }
func Float(v float64) Value { return Value{T: TFloat, F: v} }
func Str(v string) Value    { return Value{T: TString, S: v} }
func Bool(v bool) Value     { return Value{T: TBool, B: v} }

// String renders the value.
func (v Value) String() string {
	switch v.T {
	case TInt:
		return fmt.Sprintf("%d", v.I)
	case TFloat:
		return fmt.Sprintf("%g", v.F)
	case TString:
		return v.S
	case TBool:
		return fmt.Sprintf("%t", v.B)
	}
	return "?"
}

// Equal compares two values of the same type; differing types are unequal.
func (v Value) Equal(o Value) bool {
	if v.T != o.T {
		return false
	}
	switch v.T {
	case TInt:
		return v.I == o.I
	case TFloat:
		return v.F == o.F
	case TString:
		return v.S == o.S
	case TBool:
		return v.B == o.B
	}
	return false
}

// Less orders two values of the same type (bool: false < true).
func (v Value) Less(o Value) bool {
	switch v.T {
	case TInt:
		return v.I < o.I
	case TFloat:
		return v.F < o.F
	case TString:
		return v.S < o.S
	case TBool:
		return !v.B && o.B
	}
	return false
}

// Column declares one attribute of a table.
type Column struct {
	Name string
	Type Type
}

// Schema declares a table.
type Schema struct {
	Name    string
	Columns []Column
}

// Col returns the index of the named column, or -1.
func (s Schema) Col(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Errors returned by the package.
var (
	ErrNoColumn  = errors.New("store: no such column")
	ErrNoTable   = errors.New("store: no such table")
	ErrTypeClash = errors.New("store: value type does not match column type")
	ErrArity     = errors.New("store: row arity does not match schema")
	ErrRowRange  = errors.New("store: row index out of range")
	ErrDupTable  = errors.New("store: table already exists")
	ErrNoIndex   = errors.New("store: no index on column")
)

// colData is one vertically fragmented attribute vector.
type colData struct {
	typ  Type
	ints []int64
	flts []float64
	strs []string
	bls  []bool
}

func (c *colData) append(v Value) error {
	if v.T != c.typ {
		return fmt.Errorf("%w: got %s want %s", ErrTypeClash, v.T, c.typ)
	}
	switch c.typ {
	case TInt:
		c.ints = append(c.ints, v.I)
	case TFloat:
		c.flts = append(c.flts, v.F)
	case TString:
		c.strs = append(c.strs, v.S)
	case TBool:
		c.bls = append(c.bls, v.B)
	}
	return nil
}

func (c *colData) get(i int) Value {
	switch c.typ {
	case TInt:
		return Int(c.ints[i])
	case TFloat:
		return Float(c.flts[i])
	case TString:
		return Str(c.strs[i])
	default:
		return Bool(c.bls[i])
	}
}

func (c *colData) len() int {
	switch c.typ {
	case TInt:
		return len(c.ints)
	case TFloat:
		return len(c.flts)
	case TString:
		return len(c.strs)
	default:
		return len(c.bls)
	}
}

// Table is a columnar table with optional secondary indexes.
//
// Concurrency: a Table supports any number of concurrent readers (Get, Row,
// Select, Len) provided no writer (Append, Create*Index) runs at the same
// time. The one mutation on the read path — the lazy rebuild of a dirty
// sorted index inside Select — is serialized by sortedMu so that concurrent
// readers racing to rebuild the same index remain safe.
type Table struct {
	schema Schema
	cols   []colData
	n      int

	hashIdx     map[int]map[string][]int // colIdx -> key -> rows
	sortedMu    sync.Mutex               // guards lazy sorted-index rebuilds
	sortedIdx   map[int][]int            // colIdx -> row order
	sortedDirty map[int]bool             // sorted indexes needing rebuild
}

// NewTable allocates an empty table for the schema.
func NewTable(s Schema) (*Table, error) {
	if s.Name == "" {
		return nil, errors.New("store: table needs a name")
	}
	if len(s.Columns) == 0 {
		return nil, errors.New("store: table needs at least one column")
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c.Name == "" {
			return nil, errors.New("store: column needs a name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("store: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	t := &Table{schema: s, cols: make([]colData, len(s.Columns))}
	for i, c := range s.Columns {
		t.cols[i].typ = c.Type
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return t.n }

// Append adds one row; values must match the schema's arity and types.
func (t *Table) Append(row ...Value) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("%w: got %d want %d", ErrArity, len(row), len(t.cols))
	}
	for i, v := range row {
		if v.T != t.cols[i].typ {
			return fmt.Errorf("%w: column %q got %s want %s",
				ErrTypeClash, t.schema.Columns[i].Name, v.T, t.cols[i].typ)
		}
	}
	for i, v := range row {
		if err := t.cols[i].append(v); err != nil {
			return err
		}
	}
	rowIdx := t.n
	t.n++
	// Maintain indexes incrementally.
	for ci, m := range t.hashIdx {
		k := t.cols[ci].get(rowIdx).String()
		m[k] = append(m[k], rowIdx)
	}
	// Sorted indexes are rebuilt lazily on first use after a write; eager
	// maintenance would cost O(n log n) per appended row during bulk loads.
	for ci := range t.sortedIdx {
		t.sortedDirty[ci] = true
	}
	return nil
}

// Get returns the value at (row, col).
func (t *Table) Get(row, col int) (Value, error) {
	if row < 0 || row >= t.n {
		return Value{}, fmt.Errorf("%w: %d of %d", ErrRowRange, row, t.n)
	}
	if col < 0 || col >= len(t.cols) {
		return Value{}, fmt.Errorf("%w: %d", ErrNoColumn, col)
	}
	return t.cols[col].get(row), nil
}

// GetByName returns the value at (row, named column).
func (t *Table) GetByName(row int, col string) (Value, error) {
	ci := t.schema.Col(col)
	if ci < 0 {
		return Value{}, fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	return t.Get(row, ci)
}

// Row materializes a full row.
func (t *Table) Row(i int) ([]Value, error) {
	if i < 0 || i >= t.n {
		return nil, fmt.Errorf("%w: %d of %d", ErrRowRange, i, t.n)
	}
	out := make([]Value, len(t.cols))
	for c := range t.cols {
		out[c] = t.cols[c].get(i)
	}
	return out, nil
}

// Pred is a column predicate for Select.
type Pred struct {
	Col string
	Op  Op
	Val Value
}

// Op enumerates predicate operators.
type Op uint8

// Predicate operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// eval applies the operator.
func (p Pred) eval(v Value) bool {
	switch p.Op {
	case OpEq:
		return v.Equal(p.Val)
	case OpNe:
		return !v.Equal(p.Val)
	case OpLt:
		return v.Less(p.Val)
	case OpLe:
		return v.Less(p.Val) || v.Equal(p.Val)
	case OpGt:
		return p.Val.Less(v)
	case OpGe:
		return p.Val.Less(v) || v.Equal(p.Val)
	}
	return false
}

// Eq, Ne, Lt, Le, Gt, Ge build predicates.
func Eq(col string, v Value) Pred { return Pred{col, OpEq, v} }
func Ne(col string, v Value) Pred { return Pred{col, OpNe, v} }
func Lt(col string, v Value) Pred { return Pred{col, OpLt, v} }
func Le(col string, v Value) Pred { return Pred{col, OpLe, v} }
func Gt(col string, v Value) Pred { return Pred{col, OpGt, v} }
func Ge(col string, v Value) Pred { return Pred{col, OpGe, v} }

// Select returns the row indexes satisfying all predicates (conjunction).
// Equality predicates use a hash index when one exists; range predicates
// use a sorted index when one exists; remaining predicates are applied as
// filters over the candidate set.
func (t *Table) Select(preds ...Pred) ([]int, error) {
	// Validate predicates and locate columns.
	cis := make([]int, len(preds))
	for i, p := range preds {
		ci := t.schema.Col(p.Col)
		if ci < 0 {
			return nil, fmt.Errorf("%w: %q", ErrNoColumn, p.Col)
		}
		if p.Val.T != t.cols[ci].typ {
			return nil, fmt.Errorf("%w: predicate on %q got %s want %s",
				ErrTypeClash, p.Col, p.Val.T, t.cols[ci].typ)
		}
		cis[i] = ci
	}
	// Pick the most selective indexed predicate as the access path.
	candidates := []int(nil) // nil means "all rows"
	used := -1
	for i, p := range preds {
		ci := cis[i]
		if p.Op == OpEq {
			if m, ok := t.hashIdx[ci]; ok {
				candidates = m[p.Val.String()]
				used = i
				break
			}
		}
	}
	if used < 0 {
		t.sortedMu.Lock()
		for i, p := range preds {
			ci := cis[i]
			if ord, ok := t.sortedIdx[ci]; ok && p.Op != OpNe {
				if t.sortedDirty[ci] {
					t.rebuildSorted(ci)
					ord = t.sortedIdx[ci]
				}
				candidates = t.rangeFromSorted(ci, ord, p)
				used = i
				break
			}
		}
		t.sortedMu.Unlock()
	}
	var out []int
	scan := func(row int) {
		for i, p := range preds {
			if i == used {
				continue
			}
			if !p.eval(t.cols[cis[i]].get(row)) {
				return
			}
		}
		out = append(out, row)
	}
	if used >= 0 {
		for _, row := range candidates {
			scan(row)
		}
		// Hash-index candidate lists are maintained in append (= row) order,
		// so the common single-predicate probe is already sorted; only a
		// sorted-index range (value order) can arrive out of row order. The
		// O(n) sortedness check skips the O(n log n) sort on the hot path.
		if !sort.IntsAreSorted(out) {
			sort.Ints(out)
		}
		return out, nil
	}
	for row := 0; row < t.n; row++ {
		scan(row)
	}
	return out, nil
}

// rangeFromSorted answers a range/eq predicate from a sorted index.
func (t *Table) rangeFromSorted(ci int, ord []int, p Pred) []int {
	col := &t.cols[ci]
	// Binary search boundaries over ord.
	lower := sort.Search(len(ord), func(k int) bool {
		return !col.get(ord[k]).Less(p.Val) // first >= val
	})
	upper := sort.Search(len(ord), func(k int) bool {
		return p.Val.Less(col.get(ord[k])) // first > val
	})
	var lo, hi int
	switch p.Op {
	case OpEq:
		lo, hi = lower, upper
	case OpLt:
		lo, hi = 0, lower
	case OpLe:
		lo, hi = 0, upper
	case OpGt:
		lo, hi = upper, len(ord)
	case OpGe:
		lo, hi = lower, len(ord)
	default:
		lo, hi = 0, len(ord)
	}
	out := make([]int, hi-lo)
	copy(out, ord[lo:hi])
	return out
}

// CreateHashIndex builds (or rebuilds) a hash index on the column,
// accelerating equality predicates.
func (t *Table) CreateHashIndex(col string) error {
	ci := t.schema.Col(col)
	if ci < 0 {
		return fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	m := make(map[string][]int)
	for row := 0; row < t.n; row++ {
		k := t.cols[ci].get(row).String()
		m[k] = append(m[k], row)
	}
	if t.hashIdx == nil {
		t.hashIdx = map[int]map[string][]int{}
	}
	t.hashIdx[ci] = m
	return nil
}

// CreateSortedIndex builds (or rebuilds) a sorted index on the column,
// accelerating range predicates.
func (t *Table) CreateSortedIndex(col string) error {
	ci := t.schema.Col(col)
	if ci < 0 {
		return fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	if t.sortedIdx == nil {
		t.sortedIdx = map[int][]int{}
	}
	if t.sortedDirty == nil {
		t.sortedDirty = map[int]bool{}
	}
	t.rebuildSorted(ci)
	return nil
}

func (t *Table) rebuildSorted(ci int) {
	ord := make([]int, t.n)
	for i := range ord {
		ord[i] = i
	}
	col := &t.cols[ci]
	sort.SliceStable(ord, func(a, b int) bool {
		return col.get(ord[a]).Less(col.get(ord[b]))
	})
	t.sortedIdx[ci] = ord
	t.sortedDirty[ci] = false
}

// DB is a named collection of tables.
type DB struct {
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// Create adds a new table for the schema.
func (db *DB) Create(s Schema) (*Table, error) {
	if _, ok := db.tables[s.Name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDupTable, s.Name)
	}
	t, err := NewTable(s)
	if err != nil {
		return nil, err
	}
	db.tables[s.Name] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Names returns the sorted table names.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
