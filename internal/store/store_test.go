package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func playerSchema() Schema {
	return Schema{
		Name: "players",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "name", Type: TString},
			{Name: "rank", Type: TFloat},
			{Name: "lefty", Type: TBool},
		},
	}
}

func fillPlayers(t *testing.T, tbl *Table) {
	t.Helper()
	rows := []struct {
		id    int64
		name  string
		rank  float64
		lefty bool
	}{
		{1, "capriati", 1.0, false},
		{2, "hingis", 2.0, false},
		{3, "seles", 3.5, true},
		{4, "clijsters", 4.0, false},
		{5, "navratilova", 5.0, true},
	}
	for _, r := range rows {
		if err := tbl.Append(Int(r.id), Str(r.name), Float(r.rank), Bool(r.lefty)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTableAppendGet(t *testing.T) {
	tbl, err := NewTable(playerSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillPlayers(t, tbl)
	if tbl.Len() != 5 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	v, err := tbl.GetByName(2, "name")
	if err != nil || v.S != "seles" {
		t.Fatalf("GetByName = %v, %v", v, err)
	}
	row, err := tbl.Row(4)
	if err != nil {
		t.Fatal(err)
	}
	if row[1].S != "navratilova" || row[3].B != true {
		t.Fatalf("Row(4) = %v", row)
	}
}

func TestTableTypeAndArityErrors(t *testing.T) {
	tbl, _ := NewTable(playerSchema())
	if err := tbl.Append(Int(1)); !errors.Is(err, ErrArity) {
		t.Fatalf("arity error = %v", err)
	}
	if err := tbl.Append(Str("x"), Str("y"), Float(1), Bool(false)); !errors.Is(err, ErrTypeClash) {
		t.Fatalf("type error = %v", err)
	}
	// Atomicity: failed append must not leave partial column data.
	if tbl.Len() != 0 {
		t.Fatal("failed append changed length")
	}
	if err := tbl.Append(Int(1), Str("a"), Float(1), Bool(true)); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatal("append after failures broken")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewTable(Schema{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := NewTable(Schema{Name: "x"}); err == nil {
		t.Fatal("no columns accepted")
	}
	if _, err := NewTable(Schema{Name: "x", Columns: []Column{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Fatal("duplicate columns accepted")
	}
}

func TestSelectFullScan(t *testing.T) {
	tbl, _ := NewTable(playerSchema())
	fillPlayers(t, tbl)
	rows, err := tbl.Select(Eq("lefty", Bool(true)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, []int{2, 4}) {
		t.Fatalf("lefty rows = %v", rows)
	}
	rows, _ = tbl.Select(Gt("rank", Float(2.0)), Eq("lefty", Bool(false)))
	if !reflect.DeepEqual(rows, []int{3}) {
		t.Fatalf("conjunction rows = %v", rows)
	}
	rows, _ = tbl.Select(Ne("name", Str("hingis")))
	if len(rows) != 4 {
		t.Fatalf("Ne rows = %v", rows)
	}
	rows, _ = tbl.Select(Le("rank", Float(2.0)))
	if !reflect.DeepEqual(rows, []int{0, 1}) {
		t.Fatalf("Le rows = %v", rows)
	}
	rows, _ = tbl.Select(Ge("rank", Float(4.0)))
	if !reflect.DeepEqual(rows, []int{3, 4}) {
		t.Fatalf("Ge rows = %v", rows)
	}
	rows, _ = tbl.Select(Lt("id", Int(3)))
	if !reflect.DeepEqual(rows, []int{0, 1}) {
		t.Fatalf("Lt rows = %v", rows)
	}
}

func TestSelectErrors(t *testing.T) {
	tbl, _ := NewTable(playerSchema())
	fillPlayers(t, tbl)
	if _, err := tbl.Select(Eq("nope", Int(1))); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("missing column error = %v", err)
	}
	if _, err := tbl.Select(Eq("id", Str("1"))); !errors.Is(err, ErrTypeClash) {
		t.Fatalf("predicate type error = %v", err)
	}
}

func TestHashIndexMatchesScan(t *testing.T) {
	tbl, _ := NewTable(playerSchema())
	fillPlayers(t, tbl)
	scan, _ := tbl.Select(Eq("lefty", Bool(true)))
	if err := tbl.CreateHashIndex("lefty"); err != nil {
		t.Fatal(err)
	}
	idx, _ := tbl.Select(Eq("lefty", Bool(true)))
	if !reflect.DeepEqual(scan, idx) {
		t.Fatalf("hash index %v != scan %v", idx, scan)
	}
	// Index maintained across appends.
	_ = tbl.Append(Int(6), Str("sabatini"), Float(6), Bool(true))
	idx, _ = tbl.Select(Eq("lefty", Bool(true)))
	if !reflect.DeepEqual(idx, []int{2, 4, 5}) {
		t.Fatalf("post-append hash rows = %v", idx)
	}
}

func TestSortedIndexMatchesScan(t *testing.T) {
	tbl, _ := NewTable(playerSchema())
	fillPlayers(t, tbl)
	scan, _ := tbl.Select(Ge("rank", Float(3.5)))
	if err := tbl.CreateSortedIndex("rank"); err != nil {
		t.Fatal(err)
	}
	idx, _ := tbl.Select(Ge("rank", Float(3.5)))
	if !reflect.DeepEqual(scan, idx) {
		t.Fatalf("sorted index %v != scan %v", idx, scan)
	}
	// Lazy rebuild after append.
	_ = tbl.Append(Int(6), Str("sabatini"), Float(0.5), Bool(true))
	idx, _ = tbl.Select(Lt("rank", Float(1.5)))
	if !reflect.DeepEqual(idx, []int{0, 5}) {
		t.Fatalf("post-append sorted rows = %v", idx)
	}
}

// Property: for random data, indexed selection equals full-scan selection.
func TestIndexEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		plain, _ := NewTable(Schema{Name: "t", Columns: []Column{{Name: "k", Type: TInt}}})
		indexed, _ := NewTable(Schema{Name: "t", Columns: []Column{{Name: "k", Type: TInt}}})
		_ = indexed.CreateHashIndex("k")
		_ = indexed.CreateSortedIndex("k")
		for i := 0; i < 200; i++ {
			v := Int(int64(rng.Intn(20)))
			_ = plain.Append(v)
			_ = indexed.Append(v)
		}
		for _, op := range []Op{OpEq, OpLt, OpLe, OpGt, OpGe, OpNe} {
			val := Int(int64(rng.Intn(20)))
			a, _ := plain.Select(Pred{Col: "k", Op: op, Val: val})
			b, _ := indexed.Select(Pred{Col: "k", Op: op, Val: val})
			if !reflect.DeepEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestValueOrderingAndEquality(t *testing.T) {
	if !Int(1).Less(Int(2)) || Int(2).Less(Int(1)) {
		t.Fatal("int ordering broken")
	}
	if !Str("a").Less(Str("b")) {
		t.Fatal("string ordering broken")
	}
	if !Bool(false).Less(Bool(true)) || Bool(true).Less(Bool(false)) {
		t.Fatal("bool ordering broken")
	}
	if Int(1).Equal(Float(1)) {
		t.Fatal("cross-type equality")
	}
	if Int(1).Less(Float(2)) {
		t.Fatal("cross-type Less should be false")
	}
}

func TestDBCreateAndLookup(t *testing.T) {
	db := NewDB()
	if _, err := db.Create(playerSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create(playerSchema()); !errors.Is(err, ErrDupTable) {
		t.Fatalf("dup create = %v", err)
	}
	if _, err := db.Table("players"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("missing table = %v", err)
	}
	if !reflect.DeepEqual(db.Names(), []string{"players"}) {
		t.Fatalf("names = %v", db.Names())
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	db := NewDB()
	tbl, _ := db.Create(playerSchema())
	fillPlayers(t, tbl)
	other, _ := db.Create(Schema{Name: "scores", Columns: []Column{
		{Name: "pid", Type: TInt}, {Name: "pts", Type: TFloat},
	}})
	for i := 0; i < 100; i++ {
		_ = other.Append(Int(int64(i%5+1)), Float(float64(i)*0.25))
	}

	var buf bytes.Buffer
	if err := db.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Deserialize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Names(), []string{"players", "scores"}) {
		t.Fatalf("names = %v", got.Names())
	}
	gp, _ := got.Table("players")
	if gp.Len() != 5 {
		t.Fatalf("players len = %d", gp.Len())
	}
	for i := 0; i < 5; i++ {
		a, _ := tbl.Row(i)
		b, _ := gp.Row(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("row %d: %v != %v", i, a, b)
		}
	}
	gs, _ := got.Table("scores")
	v, _ := gs.GetByName(99, "pts")
	if v.F != 99*0.25 {
		t.Fatalf("float round trip = %v", v.F)
	}
	// Indexes still work after load.
	_ = gp.CreateHashIndex("name")
	rows, _ := gp.Select(Eq("name", Str("seles")))
	if !reflect.DeepEqual(rows, []int{2}) {
		t.Fatalf("post-load select = %v", rows)
	}
}

func TestPersistenceRejectsGarbage(t *testing.T) {
	if _, err := Deserialize(bytes.NewReader([]byte("XXXX junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Deserialize(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := NewDB()
	tbl, _ := db.Create(playerSchema())
	fillPlayers(t, tbl)
	path := t.TempDir() + "/meta.db"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gp, _ := got.Table("players")
	if gp.Len() != 5 {
		t.Fatalf("loaded len = %d", gp.Len())
	}
}

// Property: persistence round-trips random typed rows bit-exactly.
func TestPersistenceProperty(t *testing.T) {
	f := func(ints []int64, flts []float64, strs []string, bls []bool) bool {
		n := len(ints)
		for _, l := range []int{len(flts), len(strs), len(bls)} {
			if l < n {
				n = l
			}
		}
		db := NewDB()
		tbl, _ := db.Create(Schema{Name: "t", Columns: []Column{
			{Name: "i", Type: TInt}, {Name: "f", Type: TFloat},
			{Name: "s", Type: TString}, {Name: "b", Type: TBool},
		}})
		for k := 0; k < n; k++ {
			if err := tbl.Append(Int(ints[k]), Float(flts[k]), Str(strs[k]), Bool(bls[k])); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := db.Serialize(&buf); err != nil {
			return false
		}
		got, err := Deserialize(&buf)
		if err != nil {
			return false
		}
		gt, err := got.Table("t")
		if err != nil || gt.Len() != n {
			return false
		}
		for k := 0; k < n; k++ {
			a, _ := tbl.Row(k)
			b, _ := gt.Row(k)
			for c := range a {
				// NaN != NaN under Equal; compare bit patterns via String.
				if fmt.Sprint(a[c]) != fmt.Sprint(b[c]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGetErrors(t *testing.T) {
	tbl, _ := NewTable(playerSchema())
	fillPlayers(t, tbl)
	if _, err := tbl.Get(99, 0); !errors.Is(err, ErrRowRange) {
		t.Fatalf("row range = %v", err)
	}
	if _, err := tbl.Get(0, 99); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("col range = %v", err)
	}
	if _, err := tbl.GetByName(0, "ghost"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("missing name = %v", err)
	}
	if _, err := tbl.Row(-1); !errors.Is(err, ErrRowRange) {
		t.Fatalf("row -1 = %v", err)
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v String = %s", op, op.String())
		}
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{TInt: "int", TFloat: "float", TString: "string", TBool: "bool"} {
		if typ.String() != want {
			t.Errorf("type %d String = %s, want %s", typ, typ.String(), want)
		}
	}
}
