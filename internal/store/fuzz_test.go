package store

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSampleDB builds a DB exercising every column type, empty tables and
// multi-table layouts — the realistic seed for the deserializer fuzzer.
func fuzzSampleDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	events, err := db.Create(Schema{Name: "events", Columns: []Column{
		{Name: "id", Type: TInt},
		{Name: "confidence", Type: TFloat},
		{Name: "kind", Type: TString},
		{Name: "gradual", Type: TBool},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ {
		if err := events.Append(Int(int64(i)), Float(0.5+float64(i)/100),
			Str(strings.Repeat("net-play ", i%3+1)), Bool(i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Create(Schema{Name: "empty", Columns: []Column{
		{Name: "only", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	return db
}

func serializeDB(t testing.TB, db *DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDeserialize: corrupt snapshot bytes must surface as errors, never as
// panics or process-killing allocations. The corpus is seeded with a real
// serialized DB plus truncations and header-level mutations of it.
func FuzzDeserialize(f *testing.F) {
	real := serializeDB(f, fuzzSampleDB(f))
	f.Add(real)
	f.Add(real[:len(real)/2])                                          // mid-table truncation
	f.Add(real[:len(persistMagic)])                                    // header only
	f.Add([]byte(nil))                                                 // empty stream
	f.Add([]byte("CSDBtrash"))                                         // good magic, garbage body
	f.Add([]byte("XXXX"))                                              // bad magic
	huge := append([]byte(persistMagic), 0xff, 0xff, 0xff, 0xff, 0x0f) // huge table count
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Deserialize(bytes.NewReader(data))
		if err != nil {
			if db != nil {
				t.Fatal("Deserialize returned both a DB and an error")
			}
			return
		}
		// Whatever parsed must round-trip without crashing.
		var buf bytes.Buffer
		if err := db.Serialize(&buf); err != nil {
			t.Fatalf("re-serialize of accepted input failed: %v", err)
		}
	})
}

// TestDeserializeRoundTrip pins the fuzz seed itself: the sample DB must
// survive a serialize/deserialize cycle byte-identically.
func TestDeserializeRoundTrip(t *testing.T) {
	db := fuzzSampleDB(t)
	data := serializeDB(t, db)
	back, err := Deserialize(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	again := serializeDB(t, back)
	if !bytes.Equal(data, again) {
		t.Fatal("round-trip changed the serialized bytes")
	}
	ev, err := back.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Len() != 17 {
		t.Fatalf("events rows = %d", ev.Len())
	}
	v, err := ev.GetByName(3, "kind")
	if err != nil || v.S == "" {
		t.Fatalf("kind[3] = %v, %v", v, err)
	}
}

// TestDeserializeHostileCounts: headers claiming astronomical row counts on
// tiny inputs must error quickly instead of preallocating gigabytes.
func TestDeserializeHostileCounts(t *testing.T) {
	// magic | 1 table | name "t" | 1 col (int "c") | 2^32 rows | no data
	var buf bytes.Buffer
	buf.WriteString(persistMagic)
	buf.WriteByte(1)                                // table count
	buf.WriteByte(1)                                // name len
	buf.WriteByte('t')                              // name
	buf.WriteByte(1)                                // col count
	buf.WriteByte(byte(TInt))                       // col type
	buf.WriteByte(1)                                // col name len
	buf.WriteByte('c')                              // col name
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x10}) // uvarint 2^32
	if _, err := Deserialize(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("2^32-row claim with no data accepted")
	}
	// Same but a huge claimed string length in a string column.
	buf.Reset()
	buf.WriteString(persistMagic)
	buf.WriteByte(1)
	buf.WriteByte(1)
	buf.WriteByte('t')
	buf.WriteByte(1)
	buf.WriteByte(byte(TString))
	buf.WriteByte(1)
	buf.WriteByte('c')
	buf.WriteByte(1)                          // one row
	buf.Write([]byte{0x80, 0x80, 0x80, 0x08}) // string length 2^24 exactly...
	if _, err := Deserialize(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("huge string claim with no data accepted")
	}
}

// TestDeserializeDuplicateTable: two tables with the same name in one
// stream are rejected rather than silently collapsed.
func TestDeserializeDuplicateTable(t *testing.T) {
	db := NewDB()
	tb, err := db.Create(Schema{Name: "dup", Columns: []Column{{Name: "c", Type: TInt}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(Int(7)); err != nil {
		t.Fatal(err)
	}
	var one bytes.Buffer
	if err := db.Serialize(&one); err != nil {
		t.Fatal(err)
	}
	// Splice the single table twice into a two-table stream.
	body := one.Bytes()[len(persistMagic)+1:]
	var two bytes.Buffer
	two.WriteString(persistMagic)
	two.WriteByte(2)
	two.Write(body)
	two.Write(body)
	if _, err := Deserialize(bytes.NewReader(two.Bytes())); err == nil {
		t.Fatal("duplicate table accepted")
	}
}
