package store

import (
	"reflect"
	"sort"
	"testing"
)

// TestSelectRowOrder locks Select's output-order contract: row indexes come
// back in ascending row order on every access path — full scan, hash-index
// probe (whose candidate lists are already in append order and must skip
// the re-sort), sorted-index range (value order, which must be re-sorted),
// and indexed probes filtered by residual predicates.
func TestSelectRowOrder(t *testing.T) {
	mk := func(index func(*Table) error) *Table {
		t.Helper()
		tbl, err := NewTable(Schema{Name: "evs", Columns: []Column{
			{Name: "kind", Type: TString},
			{Name: "score", Type: TInt},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if index != nil {
			if err := index(tbl); err != nil {
				t.Fatal(err)
			}
		}
		// Appended so the sorted order of "score" differs from row order and
		// "rally" rows interleave with the rest.
		for _, r := range []struct {
			kind  string
			score int64
		}{
			{"rally", 9}, {"serve", 3}, {"rally", 1}, {"net", 7},
			{"rally", 5}, {"serve", 9}, {"rally", 2},
		} {
			if err := tbl.Append(Str(r.kind), Int(r.score)); err != nil {
				t.Fatal(err)
			}
		}
		return tbl
	}

	cases := []struct {
		name  string
		index func(*Table) error
		preds []Pred
		want  []int
	}{
		{"full-scan", nil,
			[]Pred{Eq("kind", Str("rally"))}, []int{0, 2, 4, 6}},
		{"hash-probe", func(tb *Table) error { return tb.CreateHashIndex("kind") },
			[]Pred{Eq("kind", Str("rally"))}, []int{0, 2, 4, 6}},
		{"hash-probe-residual", func(tb *Table) error { return tb.CreateHashIndex("kind") },
			[]Pred{Eq("kind", Str("rally")), Gt("score", Int(1))}, []int{0, 4, 6}},
		{"sorted-range", func(tb *Table) error { return tb.CreateSortedIndex("score") },
			[]Pred{Ge("score", Int(5))}, []int{0, 3, 4, 5}},
		{"sorted-range-residual", func(tb *Table) error { return tb.CreateSortedIndex("score") },
			[]Pred{Ge("score", Int(2)), Eq("kind", Str("rally"))}, []int{0, 4, 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := mk(tc.index)
			got, err := tbl.Select(tc.preds...)
			if err != nil {
				t.Fatal(err)
			}
			if !sort.IntsAreSorted(got) {
				t.Fatalf("Select returned rows out of order: %v", got)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Select = %v, want %v", got, tc.want)
			}
		})
	}
}
