package router

// Parity contract of the distributed tier: a dlrouter fronting N dlserve
// nodes must answer /v2/search byte-identically to one monolithic dlserve
// over the same library — across node counts, replica factors, query
// forms, cursor pagination, and a live commit landing mid-walk.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dlse"
	"repro/internal/serve"
	"repro/internal/transport"
	"repro/internal/webspace"
)

// buildEngine assembles the test engine: 3 text segments over the site's
// pages, 2 video segments (the second a simulated earlier commit).
func buildEngine(t testing.TB) *dlse.Engine {
	t.Helper()
	site, err := webspace.GenerateAusOpen(webspace.SiteConfig{
		Players: 32, YearStart: 1999, YearEnd: 2001, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	seg1, err := core.NewMetaIndex()
	if err != nil {
		t.Fatal(err)
	}
	for _, vid := range site.W.All("Video") {
		v, _ := site.W.Get(vid)
		id, err := seg1.AddVideo(core.Video{Name: v.StringAttr("name"), Width: 160, Height: 120, FPS: 25, Frames: 500})
		if err != nil {
			t.Fatal(err)
		}
		sid, err := seg1.AddSegment(core.Segment{VideoID: id, Interval: core.Interval{Start: 0, End: 200}, Class: "tennis"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := seg1.AddEvent(core.Event{VideoID: id, SegmentID: sid, Kind: "net-play", Interval: core.Interval{Start: 120, End: 180}, Confidence: 0.9}); err != nil {
			t.Fatal(err)
		}
		if _, err := seg1.AddEvent(core.Event{VideoID: id, SegmentID: sid, Kind: "rally", Interval: core.Interval{Start: 0, End: 100}, Confidence: 0.8}); err != nil {
			t.Fatal(err)
		}
	}
	base := seg1.IDState()
	seg2, err := core.NewMetaIndexAt(base)
	if err != nil {
		t.Fatal(err)
	}
	id, err := seg2.AddVideo(core.Video{Name: "earlier-commit", FPS: 25, Frames: 300})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg2.AddEvent(core.Event{VideoID: id, Kind: "net-play", Interval: core.Interval{Start: 10, End: 60}, Confidence: 0.7}); err != nil {
		t.Fatal(err)
	}
	view, err := core.NewSegmentedIndex(
		[]*core.MetaIndex{seg1, seg2},
		[]core.SegmentMeta{{ID: 1}, {ID: 2, Base: base}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := dlse.NewSegmented(site, view, dlse.Options{TextSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// cluster is N dlserve nodes over one engine (replicated storage: every
// node holds the full library) plus a monolithic reference node.
type cluster struct {
	engine  *dlse.Engine
	servers []*serve.Server // node serving layers, for swaps
	urls    []string
	mono    string        // monolithic reference node URL
	monoSrv *serve.Server // its serving layer, swapped alongside the nodes
}

func newCluster(t *testing.T, nodes int) *cluster {
	t.Helper()
	e := buildEngine(t)
	c := &cluster{engine: e}
	for i := 0; i < nodes; i++ {
		s := serve.New(e, serve.Options{})
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		c.servers = append(c.servers, s)
		c.urls = append(c.urls, ts.URL)
	}
	c.monoSrv = serve.New(e, serve.Options{})
	mono := httptest.NewServer(c.monoSrv)
	t.Cleanup(mono.Close)
	c.mono = mono.URL
	return c
}

func (c *cluster) router(t *testing.T, opts Options) string {
	t.Helper()
	r, err := New(c.urls, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)
	return ts.URL
}

// page is the comparable subset of a /v2/search response: cursor tokens,
// timings, snapshots, and cache flags are process-specific; items, count,
// and total are the contract.
type page struct {
	Items []any
	Count int
	Total int
}

func getSearch(t *testing.T, base, query string) (page, string, int) {
	t.Helper()
	resp, err := http.Get(base + "/v2/search?" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", query, err)
	}
	if resp.StatusCode != http.StatusOK {
		return page{}, "", resp.StatusCode
	}
	p := page{Count: int(m["count"].(float64)), Total: int(m["total"].(float64))}
	if items, ok := m["items"].([]any); ok {
		p.Items = items
	}
	cursor, _ := m["cursor"].(string)
	return p, cursor, resp.StatusCode
}

// walk pages through a query until the cursor runs dry, returning the
// per-page snapshots and the concatenated items.
func walk(t *testing.T, base, query string, limit int) ([]page, []any) {
	t.Helper()
	var pages []page
	var items []any
	cursor := ""
	for i := 0; ; i++ {
		q := query
		if limit > 0 {
			q += "&limit=" + url.QueryEscape(jsonInt(limit))
		}
		if cursor != "" {
			q += "&cursor=" + url.QueryEscape(cursor)
		}
		p, next, status := getSearch(t, base, q)
		if status != http.StatusOK {
			t.Fatalf("walk %s page %d: status %d", query, i, status)
		}
		pages = append(pages, p)
		items = append(items, p.Items...)
		if next == "" {
			return pages, items
		}
		cursor = next
		if i > p.Total+2 {
			t.Fatalf("walk %s did not terminate", query)
		}
	}
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestClusterParity locks byte-identical answers across 1-, 2-, and
// 3-node placements with replica factors 1 and 2, for the scattered query
// forms and the proxied combined form, paginated and unpaginated.
func TestClusterParity(t *testing.T) {
	queries := []string{
		"kw=" + url.QueryEscape("australian open final"),
		"kw=champion",
		"kw=champion&kind=vector",
		"kw=" + url.QueryEscape("australian open final") + "&kind=hybrid",
		"kind=net-play",
		"kind=rally",
		"q=" + url.QueryEscape(`find Player where exists wonFinals rank "australian open final"`),
	}
	for _, nodes := range []int{1, 2, 3} {
		c := newCluster(t, nodes)
		for _, replicas := range []int{1, 2} {
			router := c.router(t, Options{Replicas: replicas})
			for _, q := range queries {
				// Unpaginated answers match.
				mono, _, _ := getSearch(t, c.mono, q)
				dist, _, _ := getSearch(t, router, q)
				if !reflect.DeepEqual(mono, dist) {
					t.Fatalf("nodes=%d replicas=%d %s: full answer diverges\nmono %+v\ndist %+v",
						nodes, replicas, q, mono, dist)
				}
				// Paginated walks match page for page.
				monoPages, monoItems := walk(t, c.mono, q, 2)
				distPages, distItems := walk(t, router, q, 2)
				if !reflect.DeepEqual(monoPages, distPages) {
					t.Fatalf("nodes=%d replicas=%d %s: paginated walk diverges", nodes, replicas, q)
				}
				if !reflect.DeepEqual(monoItems, distItems) {
					t.Fatalf("nodes=%d replicas=%d %s: walked items diverge", nodes, replicas, q)
				}
			}
		}
	}
}

// TestClusterErrorParity locks that the router's error surface matches a
// node's: same statuses, same machine-readable codes.
func TestClusterErrorParity(t *testing.T) {
	c := newCluster(t, 2)
	router := c.router(t, Options{})
	cases := []struct {
		query  string
		status int
	}{
		{"", http.StatusBadRequest},                       // no form (proxied)
		{"kw=the+of+and", http.StatusBadRequest},          // unrankable (scattered)
		{"kw=final&cursor=!!!", http.StatusBadRequest},    // bad cursor (router-side)
		{"kw=final&limit=-2", http.StatusBadRequest},      // strict limit (router-side)
		{"q=find+Ghost", http.StatusUnprocessableEntity},  // schema error (proxied)
		{"kind=net-play&kw=final", http.StatusBadRequest}, // ambiguous (proxied)
	}
	for _, tc := range cases {
		for _, base := range []string{c.mono, router} {
			resp, err := http.Get(base + "/v2/search?" + tc.query)
			if err != nil {
				t.Fatal(err)
			}
			var m map[string]any
			_ = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("%s @ %s: status %d, want %d", tc.query, base, resp.StatusCode, tc.status)
			}
			if m["code"] == nil || m["code"] == "" {
				t.Fatalf("%s @ %s: missing error code: %v", tc.query, base, m)
			}
		}
	}
}

// commitView extends the cluster's library with one more segment and
// installs it on every node — the distributed image of a commit (all nodes
// ingest the same file set).
func (c *cluster) commitView(t *testing.T) {
	t.Helper()
	vi := c.engine.VideoIndex()
	parts := make([]*core.MetaIndex, vi.NumSegments())
	metas := vi.Metas()
	for i := range parts {
		parts[i] = vi.Part(i)
	}
	base := parts[len(parts)-1].IDState()
	seg, err := core.NewMetaIndexAt(base)
	if err != nil {
		t.Fatal(err)
	}
	id, err := seg.AddVideo(core.Video{Name: "live-commit", FPS: 25, Frames: 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg.AddEvent(core.Event{VideoID: id, Kind: "net-play", Interval: core.Interval{Start: 5, End: 45}, Confidence: 0.6}); err != nil {
		t.Fatal(err)
	}
	view, err := core.NewSegmentedIndex(append(parts, seg),
		append(metas, core.SegmentMeta{ID: metas[len(metas)-1].ID + 1, Base: base}),
		vi.Generation()+1)
	if err != nil {
		t.Fatal(err)
	}
	next := c.engine.WithVideo(view)
	for _, s := range c.servers {
		s.Swap(next)
	}
	c.monoSrv.Swap(next)
}

// TestClusterLiveCommit walks a paginated scene query through the router
// while a commit lands on every node mid-walk (run under -race). Commits
// append, so the pre-commit answer is a prefix of the post-commit answer:
// every walked item must equal the post-commit answer at its offset, and
// concurrent full-answer readers must see one generation per response.
func TestClusterLiveCommit(t *testing.T) {
	c := newCluster(t, 2)
	router := c.router(t, Options{Replicas: 2})
	const q = "kind=net-play"

	_, preItems := walk(t, c.mono, q, 0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers hammer the router during the commit window.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, _, status := getSearch(t, router, q)
				if status != http.StatusOK {
					t.Errorf("concurrent read: status %d", status)
					return
				}
				if p.Total != len(preItems) && p.Total != len(preItems)+1 {
					t.Errorf("concurrent read: total %d, want %d or %d",
						p.Total, len(preItems), len(preItems)+1)
					return
				}
				if p.Total != len(p.Items) {
					t.Errorf("concurrent read: mixed-generation answer (%d items, total %d)",
						len(p.Items), p.Total)
					return
				}
			}
		}()
	}

	// Walk pages; commit after the second page.
	var walked []any
	cursor := ""
	for i := 0; ; i++ {
		query := q + "&limit=2"
		if cursor != "" {
			query += "&cursor=" + url.QueryEscape(cursor)
		}
		p, next, status := getSearch(t, router, query)
		if status != http.StatusOK {
			t.Fatalf("walk page %d: status %d", i, status)
		}
		walked = append(walked, p.Items...)
		if i == 1 {
			c.commitView(t)
		}
		if next == "" {
			break
		}
		cursor = next
	}
	close(stop)
	wg.Wait()

	_, postItems := walk(t, c.mono, q, 0)
	if len(postItems) != len(preItems)+1 {
		t.Fatalf("commit did not extend the answer: %d -> %d", len(preItems), len(postItems))
	}
	if len(walked) < len(preItems) {
		t.Fatalf("walk lost items: %d < %d", len(walked), len(preItems))
	}
	for i, item := range walked {
		if !reflect.DeepEqual(item, postItems[i]) {
			t.Fatalf("walked item %d diverges from the committed answer", i)
		}
	}
}

// TestClusterLiveCommitRanked walks paginated vector and hybrid queries
// through the router while a commit lands on every node mid-walk (run
// under -race). A commit inserts the new video document at its score
// position — ranked answers are not append-only — so the invariant is:
// every page is a clean slice of exactly one generation's full answer
// (pages fetched before the commit match the pre-commit ranking at their
// offset, pages after match the post-commit one), and concurrent
// full-answer readers never observe a mixed-generation response.
func TestClusterLiveCommitRanked(t *testing.T) {
	for _, q := range []string{
		"kw=champion&kind=vector",
		"kw=champion&kind=hybrid",
	} {
		c := newCluster(t, 2)
		router := c.router(t, Options{Replicas: 2})

		_, preItems := walk(t, c.mono, q, 0)

		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					p, _, status := getSearch(t, router, q)
					if status != http.StatusOK {
						t.Errorf("concurrent read: status %d", status)
						return
					}
					if p.Total != len(p.Items) {
						t.Errorf("concurrent read: mixed-generation answer (%d items, total %d)",
							len(p.Items), p.Total)
						return
					}
				}
			}()
		}

		var walked []any
		cursor := ""
		committed := false
		for i := 0; ; i++ {
			query := q + "&limit=3"
			if cursor != "" {
				query += "&cursor=" + url.QueryEscape(cursor)
			}
			p, next, status := getSearch(t, router, query)
			if status != http.StatusOK {
				t.Fatalf("%s walk page %d: status %d", q, i, status)
			}
			walked = append(walked, p.Items...)
			if i == 1 {
				c.commitView(t)
				committed = true
			}
			if next == "" {
				break
			}
			cursor = next
			if i > len(preItems) {
				t.Fatalf("%s: walk did not terminate", q)
			}
		}
		close(stop)
		wg.Wait()
		if !committed {
			t.Fatalf("%s: walk finished before the commit landed", q)
		}

		_, postItems := walk(t, c.mono, q, 0)
		if len(postItems) != len(preItems)+1 {
			t.Fatalf("%s: commit did not extend the answer: %d -> %d",
				q, len(preItems), len(postItems))
		}
		for i, item := range walked {
			preOK := i < len(preItems) && reflect.DeepEqual(item, preItems[i])
			postOK := i < len(postItems) && reflect.DeepEqual(item, postItems[i])
			if !preOK && !postOK {
				t.Fatalf("%s walked item %d matches neither generation's answer", q, i)
			}
		}
	}
}

// TestRouterLaneMetrics: the router exposes the same per-lane query
// counters as a node (dl_queries_{lexical,vector,hybrid}_total), moved by
// the scattered lane of each /v2/search.
func TestRouterLaneMetrics(t *testing.T) {
	c := newCluster(t, 2)
	router := c.router(t, Options{})
	getSearch(t, router, "kw=champion")
	getSearch(t, router, "kw=champion&kind=vector")
	getSearch(t, router, "kw=champion&kind=hybrid")
	getSearch(t, router, "kw=champion&kind=hybrid")

	resp, err := http.Get(router + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"dl_queries_lexical_total 1",
		"dl_queries_vector_total 1",
		"dl_queries_hybrid_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("router /metrics missing %q:\n%s", want, body)
		}
	}
}

// TestRouterSearchDirect covers the Go-level Search API: parity with the
// engine and cursor binding.
func TestRouterSearchDirect(t *testing.T) {
	c := newCluster(t, 2)
	r, err := New(c.urls, Options{Replicas: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rs, partial, err := r.Search(ctx, dlse.Query{Scenes: "net-play"}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if partial {
		t.Fatal("healthy cluster served a partial answer")
	}
	mono, err := c.engine.Search(ctx, dlse.Query{Scenes: "net-play"})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Total != mono.Total || len(rs.Items) != len(mono.Items) {
		t.Fatalf("distributed %d/%d vs mono %d/%d", len(rs.Items), rs.Total, len(mono.Items), mono.Total)
	}
	for i := range rs.Items {
		if !reflect.DeepEqual(*rs.Items[i].Scene, *mono.Items[i].Scene) {
			t.Fatalf("item %d diverges", i)
		}
	}

	// A cursor minted for one query fails on another — the engine's own
	// binding, reused.
	first, _, err := r.Search(ctx, dlse.Query{Scenes: "net-play"}, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cursor == "" {
		t.Fatal("no cursor on paginated answer")
	}
	if _, _, err := r.Search(ctx, dlse.Query{Scenes: "rally"}, first.Cursor, 2); err == nil {
		t.Fatal("cross-query cursor accepted")
	}

	// Unsupported distributed form is rejected at the API level.
	if _, _, err := r.Search(ctx, dlse.Query{Source: "find Player"}, "", 0); err == nil {
		t.Fatal("combined form accepted by distributed Search")
	}

	_ = transport.ErrUnavailable // keep import for doc symmetry
}
