// Package router is the stateless scatter-gather tier of the distributed
// digital library: it fans unified v2 queries over a set of dlserve nodes
// through the transport.SegmentSource interface and merges their partial
// top-K streams under the engine's global (score desc, DocID asc) total
// order, so a cluster answer is byte-identical to a monolithic one.
//
// The cluster model is replicated storage, partitioned compute: every node
// serves the full segment set (all nodes load the same library), and the
// router assigns each segment ordinal a primary plus replicas by rotation
// over the sorted node list. That placement is a pure function of
// (ordinal, node list), so the router keeps no state between requests —
// any number of routers can front the same nodes.
//
// Reads are conditional on the manifest generation: a node whose segment
// set moved (a commit or compaction landed) fails the leg with ErrStale
// and the router re-plans against a fresh manifest, so every served page
// is computed against one consistent generation. Per-leg failures hedge
// (after HedgeAfter, the next replica is raced) and fail over (an
// unreachable node's legs move to replicas immediately); when every
// replica of a segment is down, the router either fails open (serve the
// reachable subset, marked partial) or fails closed (503), per Options.
package router

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/dlse"
	"repro/internal/ir"
	"repro/internal/transport"
)

// Options tunes a Router.
type Options struct {
	// Replicas is how many nodes may answer each segment ordinal (primary
	// plus Replicas-1 fallbacks), capped at the node count. < 1 selects 2.
	Replicas int
	// HedgeAfter is how long the primary leg may run before the next
	// replica is raced against it. 0 selects 20ms; negative disables
	// hedging (failover on error still happens).
	HedgeAfter time.Duration
	// Timeout bounds one scatter attempt. 0 selects 5s.
	Timeout time.Duration
	// FailOpen serves the reachable subset (marked partial) when every
	// replica of some segment is down, instead of failing the query
	// with 503.
	FailOpen bool
}

func (o Options) withDefaults(nodes int) Options {
	if o.Replicas < 1 {
		o.Replicas = 2
	}
	if o.Replicas > nodes {
		o.Replicas = nodes
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 20 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	return o
}

// node is one cluster member: its segment source plus the health flag the
// background checker maintains. Placement prefers healthy candidates but
// never strands a segment: when every candidate is marked down, legs are
// attempted anyway (the mark may be stale).
type node struct {
	src     transport.SegmentSource
	healthy expvar.Int // 1 healthy, 0 down (expvar so /metrics exports it)
}

// Router fans queries over a fixed node set. Safe for concurrent use.
type Router struct {
	nodes []*node // sorted by Addr: the placement input
	opts  Options

	// Counters and gauges, exported on /metrics and /debug/vars.
	queries   *expvar.Int // v2 searches handled
	lexicalQ  *expvar.Int // keyword-lane searches
	vectorQ   *expvar.Int // vector-lane searches
	hybridQ   *expvar.Int // hybrid-lane searches
	proxied   *expvar.Int // queries proxied whole to one node (q=, explain)
	scatters  *expvar.Int // scatter attempts (stale retries count again)
	staleRe   *expvar.Int // scatter attempts retried on ErrStale
	hedges    *expvar.Int // hedge legs launched
	hedgeWins *expvar.Int // groups won by a non-primary leg
	failovers *expvar.Int // legs moved to a replica after an error
	partials  *expvar.Int // fail-open answers served incomplete
	failures  *expvar.Int // queries failed
	nodeReqs  *expvar.Map // per-node legs launched
	nodeErrs  *expvar.Map // per-node legs failed
	nodeHedge *expvar.Map // per-node hedge legs launched
	metrics   *expvar.Map

	mux *http.ServeMux
}

// New builds a Router over node base URLs, talking HTTP via client (nil
// selects http.DefaultClient).
func New(urls []string, opts Options, client *http.Client) (*Router, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("router: no nodes")
	}
	srcs := make([]transport.SegmentSource, len(urls))
	for i, u := range urls {
		srcs[i] = transport.NewRemote(u, client)
	}
	return NewWithSources(srcs, opts)
}

// NewWithSources builds a Router over explicit segment sources — the hook
// tests use to inject in-process or fault-injecting sources. Sources are
// sorted by Addr so placement is deterministic regardless of argument
// order.
func NewWithSources(srcs []transport.SegmentSource, opts Options) (*Router, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("router: no nodes")
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Addr() < srcs[j].Addr() })
	for i := 1; i < len(srcs); i++ {
		if srcs[i].Addr() == srcs[i-1].Addr() {
			return nil, fmt.Errorf("router: duplicate node %s", srcs[i].Addr())
		}
	}
	r := &Router{
		opts:      opts.withDefaults(len(srcs)),
		queries:   new(expvar.Int),
		lexicalQ:  new(expvar.Int),
		vectorQ:   new(expvar.Int),
		hybridQ:   new(expvar.Int),
		proxied:   new(expvar.Int),
		scatters:  new(expvar.Int),
		staleRe:   new(expvar.Int),
		hedges:    new(expvar.Int),
		hedgeWins: new(expvar.Int),
		failovers: new(expvar.Int),
		partials:  new(expvar.Int),
		failures:  new(expvar.Int),
		nodeReqs:  new(expvar.Map).Init(),
		nodeErrs:  new(expvar.Map).Init(),
		nodeHedge: new(expvar.Map).Init(),
	}
	healthMap := new(expvar.Map).Init()
	for _, s := range srcs {
		n := &node{src: s}
		n.healthy.Set(1)
		r.nodes = append(r.nodes, n)
		healthMap.Set(s.Addr(), &n.healthy)
	}
	r.metrics = new(expvar.Map).Init()
	r.metrics.Set("router_queries", r.queries)
	// The lane counters share the node surface's names (dl_queries_*_total)
	// so one dashboard query covers routers and nodes alike.
	r.metrics.Set("queries_lexical", r.lexicalQ)
	r.metrics.Set("queries_vector", r.vectorQ)
	r.metrics.Set("queries_hybrid", r.hybridQ)
	r.metrics.Set("router_proxied", r.proxied)
	r.metrics.Set("router_scatters", r.scatters)
	r.metrics.Set("router_stale_retries", r.staleRe)
	r.metrics.Set("router_hedges", r.hedges)
	r.metrics.Set("router_hedge_wins", r.hedgeWins)
	r.metrics.Set("router_failovers", r.failovers)
	r.metrics.Set("router_partial_answers", r.partials)
	r.metrics.Set("router_failures", r.failures)
	r.metrics.Set("node_requests", r.nodeReqs)
	r.metrics.Set("node_errors", r.nodeErrs)
	r.metrics.Set("node_hedges", r.nodeHedge)
	r.metrics.Set("node_healthy", healthMap)
	r.metrics.Set("nodes", expvar.Func(func() any { return len(r.nodes) }))
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("/v2/search", r.handleSearch)
	r.mux.HandleFunc("/healthz", r.handleHealthz)
	r.mux.HandleFunc("/metrics", r.handleMetrics)
	r.mux.HandleFunc("/debug/vars", r.handleVars)
	return r, nil
}

// Nodes lists the cluster members in placement order.
func (r *Router) Nodes() []string {
	addrs := make([]string, len(r.nodes))
	for i, n := range r.nodes {
		addrs[i] = n.src.Addr()
	}
	return addrs
}

// CheckHealth probes every node once and updates the health flags
// placement consults. Returns the number of healthy nodes.
func (r *Router) CheckHealth(ctx context.Context) int {
	healthy := 0
	for _, n := range r.nodes {
		if err := n.src.Health(ctx); err != nil {
			n.healthy.Set(0)
		} else {
			n.healthy.Set(1)
			healthy++
		}
	}
	return healthy
}

// availability reports whether a leg error means "this node could not
// answer" (retry elsewhere) rather than "this query is wrong" (every
// replica would answer the same — abort so fail-open can never turn a 400
// into an empty 200).
func availability(err error) bool {
	return errors.Is(err, transport.ErrUnavailable) ||
		errors.Is(err, context.DeadlineExceeded)
}

// manifest fetches the current segment manifest from the first node that
// answers, preferring healthy ones.
func (r *Router) manifest(ctx context.Context) (transport.Manifest, error) {
	var lastErr error
	for _, preferHealthy := range []bool{true, false} {
		for _, n := range r.nodes {
			if preferHealthy != (n.healthy.Value() == 1) {
				continue
			}
			m, err := n.src.Manifest(ctx)
			if err == nil {
				return m, nil
			}
			lastErr = err
			if !availability(err) {
				return transport.Manifest{}, err
			}
			n.healthy.Set(0)
		}
	}
	return transport.Manifest{}, fmt.Errorf("no node answered a manifest: %w", lastErr)
}

// group is one scatter unit: the segment ordinals owned by one primary,
// plus the replica candidates that may answer them. Candidates depend only
// on ordinal mod node count, so ordinals sharing a primary share replicas.
type group struct {
	sel        transport.Sel
	candidates []*node // primary first, then failover/hedge order
}

// plan partitions the wanted segment ordinals into per-primary groups.
// Ordinal o's candidates are nodes (o+r) mod N for r < Replicas over the
// sorted node list — a pure function, so every router instance plans
// identically. Within a group, candidates marked unhealthy sort after
// healthy ones (order among each class preserved) so the first leg goes
// somewhere likely to answer.
func (r *Router) plan(textOrds, videoOrds []int) []group {
	n := len(r.nodes)
	byPrimary := make(map[int]*group)
	add := func(ord int, video bool) {
		p := ord % n
		g := byPrimary[p]
		if g == nil {
			g = &group{}
			for rep := 0; rep < r.opts.Replicas; rep++ {
				g.candidates = append(g.candidates, r.nodes[(p+rep)%n])
			}
			sort.SliceStable(g.candidates, func(i, j int) bool {
				return g.candidates[i].healthy.Value() > g.candidates[j].healthy.Value()
			})
			byPrimary[p] = g
		}
		if video {
			g.sel.Video = append(g.sel.Video, ord)
		} else {
			g.sel.Text = append(g.sel.Text, ord)
		}
	}
	for _, o := range textOrds {
		add(o, false)
	}
	for _, o := range videoOrds {
		add(o, true)
	}
	groups := make([]group, 0, len(byPrimary))
	for p := 0; p < n; p++ {
		if g := byPrimary[p]; g != nil {
			groups = append(groups, *g)
		}
	}
	return groups
}

// legResult is one candidate's answer to a group's partial query.
type legResult struct {
	p    *transport.Partial
	err  error
	node *node
	leg  int // candidate index that ran the leg
}

// runGroup executes one group with hedging and failover: the primary leg
// launches immediately; after HedgeAfter the next candidate is raced
// against it; a leg failing with an availability error triggers the next
// candidate at once. First successful answer wins and cancels the rest.
// Semantic errors (bad query, stale generation) abort immediately — every
// replica would answer the same.
func (r *Router) runGroup(ctx context.Context, q transport.Query, g group, expectGen int64) (*transport.Partial, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan legResult, len(g.candidates))
	launched := 0
	launch := func(hedge bool) {
		leg := launched
		n := g.candidates[leg]
		launched++
		r.nodeReqs.Add(n.src.Addr(), 1)
		if hedge {
			r.hedges.Add(1)
			r.nodeHedge.Add(n.src.Addr(), 1)
		}
		go func() {
			p, err := n.src.Partial(ctx, q, g.sel, expectGen)
			results <- legResult{p: p, err: err, node: n, leg: leg}
		}()
	}
	launch(false)

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if r.opts.HedgeAfter > 0 && launched < len(g.candidates) {
		hedgeTimer = time.NewTimer(r.opts.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	var lastErr error
	pending := launched
	for {
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, fmt.Errorf("%w: %v", transport.ErrUnavailable, ctx.Err())
		case <-hedgeC:
			hedgeC = nil
			if launched < len(g.candidates) {
				launch(true)
				pending++
			}
		case res := <-results:
			if res.err == nil {
				if res.leg > 0 {
					r.hedgeWins.Add(1)
				}
				return res.p, nil
			}
			pending--
			r.nodeErrs.Add(res.node.src.Addr(), 1)
			stale := errors.Is(res.err, transport.ErrStale)
			if !availability(res.err) && !stale {
				return nil, res.err // semantic: every replica would answer the same
			}
			// A stale node (behind the manifest mid-commit) is worth a
			// replica try — another node may already serve the expected
			// generation — but it is not down, so its health mark stays.
			if !stale {
				res.node.healthy.Set(0)
			}
			lastErr = res.err
			if launched < len(g.candidates) {
				r.failovers.Add(1)
				launch(false)
				pending++
			} else if pending == 0 {
				return nil, lastErr
			}
		}
	}
}

// gathered is one consistent-generation scatter answer.
type gathered struct {
	man     transport.Manifest
	parts   []*transport.Partial
	missing int // groups lost to fail-open
}

// scatter plans and executes one consistent read of the wanted segments.
// ErrStale from any leg aborts the attempt (the caller refetches the
// manifest and retries); with FailOpen, groups whose every candidate is
// down are dropped and counted in missing.
func (r *Router) scatter(ctx context.Context, q transport.Query, man transport.Manifest, textOrds, videoOrds []int) (*gathered, error) {
	r.scatters.Add(1)
	ctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	groups := r.plan(textOrds, videoOrds)
	type out struct {
		p   *transport.Partial
		err error
	}
	outs := make([]out, len(groups))
	done := make(chan int, len(groups))
	for i := range groups {
		go func(i int) {
			p, err := r.runGroup(ctx, q, groups[i], man.Generation)
			outs[i] = out{p, err}
			done <- i
		}(i)
	}
	g := &gathered{man: man}
	var firstErr error
	for range groups {
		i := <-done
		if err := outs[i].err; err != nil {
			switch {
			case errors.Is(err, transport.ErrStale):
				// Abort the whole attempt: the segment set moved.
				return nil, err
			case availability(err) && r.opts.FailOpen:
				g.missing++
			case firstErr == nil:
				firstErr = err
			}
			continue
		}
		g.parts = append(g.parts, outs[i].p)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return g, nil
}

// ordinals returns [0, n).
func ordinals(n int) []int {
	ords := make([]int, n)
	for i := range ords {
		ords[i] = i
	}
	return ords
}

// Search answers a unified v2 query by scatter-gather over the cluster.
// Supported forms are Keyword, Vector, Hybrid, and Scenes (the combined
// q= form is proxied whole by the HTTP layer — every node holds the full
// library). The bool reports a fail-open partial answer. Stale-generation
// aborts re-plan against a fresh manifest, bounded at 4 attempts.
func (r *Router) Search(ctx context.Context, q dlse.Query, cursor dlse.Cursor, limit int) (*dlse.ResultSet, bool, error) {
	key, ok := dlse.CanonicalKey(q)
	if !ok {
		return nil, false, fmt.Errorf("router: unsupported distributed query form")
	}
	r.queries.Add(1)
	switch {
	case q.Keyword != "":
		r.lexicalQ.Add(1)
	case q.Vector != "":
		r.vectorQ.Add(1)
	case q.Hybrid != "":
		r.hybridQ.Add(1)
	}
	rs, partial, err := r.searchAll(ctx, q, key)
	if err != nil {
		r.failures.Add(1)
		return nil, false, err
	}
	if partial {
		r.partials.Add(1)
	}
	page, err := rs.Page(cursor, limit)
	if err != nil {
		r.failures.Add(1)
		return nil, false, err
	}
	return page, partial, nil
}

const maxStaleRetries = 4

// searchAll computes the full (unpaginated) distributed answer.
func (r *Router) searchAll(ctx context.Context, q dlse.Query, key string) (*dlse.ResultSet, bool, error) {
	var lastErr error
	for attempt := 0; attempt < maxStaleRetries; attempt++ {
		if attempt > 0 {
			r.staleRe.Add(1)
			// A short, growing pause lets a cluster-wide swap finish
			// instead of burning every retry inside the same mid-commit
			// window (node A installed, node B a few microseconds behind).
			time.Sleep(time.Duration(attempt) * 2 * time.Millisecond)
		}
		man, err := r.manifest(ctx)
		if err != nil {
			return nil, false, err
		}
		if q.Hybrid != "" {
			// Hybrid fans out twice under one manifest generation — the
			// keyword lane over the text ordinals, the vector lane over
			// text + video ordinals — and fuses the two full rankings by
			// RRF, exactly as a monolithic engine does. Either scatter
			// going stale aborts the pair: both lanes must answer against
			// the same segment set or the fusion is meaningless.
			kw, err := r.scatter(ctx, transport.Query{Keyword: q.Hybrid, K: 0},
				man, ordinals(man.TextSegments), nil)
			if err == nil {
				var vec *gathered
				vec, err = r.scatter(ctx, transport.Query{Vector: q.Hybrid, K: 0},
					man, ordinals(man.TextSegments), ordinals(len(man.Segments)))
				if err == nil {
					items := dlse.FuseRRF(hitItems(kw.parts), hitItems(vec.parts))
					rs := dlse.NewResultSet(items, key, man.Generation)
					return rs, kw.missing > 0 || vec.missing > 0, nil
				}
			}
			if errors.Is(err, transport.ErrStale) {
				lastErr = err
				continue
			}
			return nil, false, err
		}
		var tq transport.Query
		var textOrds, videoOrds []int
		switch {
		case q.Keyword != "":
			// k=0: full ranking, so cursor pagination slices the same list
			// a monolithic engine would cache.
			tq = transport.Query{Keyword: q.Keyword, K: 0}
			textOrds = ordinals(man.TextSegments)
		case q.Vector != "":
			// The vector lane spans both ordinal spaces: pages first, then
			// video-embedding segments (see transport.PartialOf).
			tq = transport.Query{Vector: q.Vector, K: 0}
			textOrds = ordinals(man.TextSegments)
			videoOrds = ordinals(len(man.Segments))
		default:
			if man.Videos == 0 {
				return nil, false, fmt.Errorf("%w: scene query %q needs an indexed video library",
					dlse.ErrNoIndex, q.Scenes)
			}
			tq = transport.Query{Scenes: q.Scenes}
			videoOrds = ordinals(len(man.Segments))
		}
		g, err := r.scatter(ctx, tq, man, textOrds, videoOrds)
		if err != nil {
			if errors.Is(err, transport.ErrStale) {
				lastErr = err
				continue
			}
			return nil, false, err
		}
		items := mergeParts(q, g.parts)
		// Cursors bind to (key, snapshot); the manifest generation is the
		// cluster-wide stand-in for a snapshot — stable across nodes,
		// moved by every commit.
		rs := dlse.NewResultSet(items, key, g.man.Generation)
		return rs, g.missing > 0, nil
	}
	return nil, false, fmt.Errorf("router: segment set kept moving during query: %w", lastErr)
}

// hitItems merges per-group ranked partial answers (keyword or vector —
// both rank under the engine's global score desc, DocID asc order) into
// the global item list.
func hitItems(parts []*transport.Partial) []dlse.Item {
	per := make([][]ir.Hit, 0, len(parts))
	for _, p := range parts {
		hits := make([]ir.Hit, len(p.Hits))
		for i, h := range p.Hits {
			hits[i] = ir.Hit{Doc: h.Doc, Name: h.Page, Score: h.Score}
		}
		per = append(per, hits)
	}
	merged := ir.MergeHits(per, 0)
	items := make([]dlse.Item, len(merged))
	for i, h := range merged {
		items[i] = dlse.Item{Page: h.Name, Doc: h.Doc, Score: h.Score}
	}
	return items
}

// mergeParts merges per-group partial answers into the global item list —
// the gather half of scatter-gather. Keyword and vector answers merge
// under the engine's total order (score desc, DocID asc); scene answers
// concatenate groups in segment-ordinal order, restoring the monolithic
// walk.
func mergeParts(q dlse.Query, parts []*transport.Partial) []dlse.Item {
	if q.Keyword != "" || q.Vector != "" {
		return hitItems(parts)
	}
	var groups []transport.SceneGroup
	for _, p := range parts {
		groups = append(groups, p.Groups...)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Seg < groups[j].Seg })
	var items []dlse.Item
	for _, sg := range groups {
		scenes := sg.Scenes
		for i := range scenes {
			items = append(items, dlse.Item{Scene: &scenes[i]})
		}
	}
	return items
}
