package router

// The router's HTTP surface — the same /v2/search contract dlserve
// exposes, backed by the cluster instead of one engine, plus /healthz,
// Prometheus /metrics, and expvar /debug/vars. Parameter parsing, the
// response shape, and the typed error envelope are the serve package's
// own exported helpers, so a client cannot tell a router from a node by
// the bytes (modulo cursor tokens embedding the cluster generation).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/dlse"
	"repro/internal/serve"
	"repro/internal/transport"
)

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(w, req) }

// handleSearch answers GET /v2/search. Keyword (kw=), vector and hybrid
// (kw= with kind=vector|hybrid), and scene (kind=) queries scatter over
// the cluster's segment placement; combined-language (q=) and explain
// queries are proxied whole to one node — every node holds the full
// library, so a single-node answer is already the cluster answer for
// those.
func (r *Router) handleSearch(w http.ResponseWriter, req *http.Request) {
	if !serve.OnlyGetV2(w, req) {
		return
	}
	q, cursor, limit, explain, err := serve.ParseSearchQuery(req)
	if err != nil {
		serve.WriteSearchError(w, err)
		return
	}
	if _, ok := dlse.CanonicalKey(q); !ok || explain {
		r.proxy(w, req)
		return
	}
	start := time.Now()
	rs, partial, err := r.Search(req.Context(), q, cursor, limit)
	if err != nil {
		serve.WriteSearchError(w, err)
		return
	}
	serve.WriteSearchResult(w, rs, false, partial, time.Since(start))
}

// proxy forwards the request whole to the first node that answers,
// healthy nodes first. Any HTTP response — including a 4xx/5xx error
// envelope — is a valid answer and is copied back verbatim; only
// transport-level failures fail over to the next node.
func (r *Router) proxy(w http.ResponseWriter, req *http.Request) {
	r.queries.Add(1)
	r.proxied.Add(1)
	var lastErr error
	for _, preferHealthy := range []bool{true, false} {
		for _, n := range r.nodes {
			if preferHealthy != (n.healthy.Value() == 1) {
				continue
			}
			addr := n.src.Addr()
			if !strings.HasPrefix(addr, "http") {
				lastErr = fmt.Errorf("%w: node %s has no HTTP address to proxy to",
					transport.ErrUnavailable, addr)
				continue
			}
			r.nodeReqs.Add(addr, 1)
			out, err := http.NewRequestWithContext(req.Context(), http.MethodGet,
				strings.TrimRight(addr, "/")+req.URL.RequestURI(), nil)
			if err != nil {
				lastErr = err
				continue
			}
			resp, err := http.DefaultClient.Do(out)
			if err != nil {
				r.nodeErrs.Add(addr, 1)
				n.healthy.Set(0)
				lastErr = fmt.Errorf("%w: %v", transport.ErrUnavailable, err)
				continue
			}
			defer resp.Body.Close()
			w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
			w.WriteHeader(resp.StatusCode)
			_, _ = io.Copy(w, resp.Body)
			return
		}
	}
	r.failures.Add(1)
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: no nodes", transport.ErrUnavailable)
	}
	serve.WriteSearchError(w, lastErr)
}

// routerHealth is the /healthz answer: the router's own liveness plus
// per-node health as placement currently sees it.
type routerHealth struct {
	Status  string       `json:"status"`
	Nodes   []nodeHealth `json:"nodes"`
	Healthy int          `json:"healthy"`
}

type nodeHealth struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
}

// handleHealthz answers GET /healthz.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	h := routerHealth{Status: "ok"}
	for _, n := range r.nodes {
		up := n.healthy.Value() == 1
		if up {
			h.Healthy++
		}
		h.Nodes = append(h.Nodes, nodeHealth{Addr: n.src.Addr(), Healthy: up})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(h)
}

// handleMetrics answers GET /metrics in Prometheus text exposition format:
// router counters (scatters, hedges, failovers, stale retries) plus
// per-node request/error/hedge counters labeled node="...".
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", serve.PromContentType)
	serve.WriteProm(w, "dl", r.metrics)
}

// handleVars answers GET /debug/vars with the same map as expvar JSON.
func (r *Router) handleVars(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, r.metrics.String())
}
