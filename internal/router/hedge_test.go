package router

// Failure-mode tests with fault-injecting segment sources: hedged reads
// cutting slow-node tail latency, failover keeping answers byte-identical
// with a dead replica, and the fail-open/fail-closed choice when every
// replica of a segment is down.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dlse"
	"repro/internal/transport"
)

// fakeSource wraps a Local source with an injectable address, response
// delay, and hard failure — the knobs the failure-mode tests turn.
type fakeSource struct {
	inner *transport.Local
	addr  string
	delay time.Duration
	fail  atomic.Bool
}

func (f *fakeSource) Addr() string { return f.addr }

func (f *fakeSource) Manifest(ctx context.Context) (transport.Manifest, error) {
	if f.fail.Load() {
		return transport.Manifest{}, fmt.Errorf("%w: node %s is down", transport.ErrUnavailable, f.addr)
	}
	return f.inner.Manifest(ctx)
}

func (f *fakeSource) Health(ctx context.Context) error {
	if f.fail.Load() {
		return fmt.Errorf("%w: node %s is down", transport.ErrUnavailable, f.addr)
	}
	return f.inner.Health(ctx)
}

func (f *fakeSource) Partial(ctx context.Context, q transport.Query, sel transport.Sel, expectGen int64) (*transport.Partial, error) {
	if f.fail.Load() {
		return nil, fmt.Errorf("%w: node %s is down", transport.ErrUnavailable, f.addr)
	}
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %v", transport.ErrUnavailable, ctx.Err())
		}
	}
	return f.inner.Partial(ctx, q, sel, expectGen)
}

// fakeCluster builds n fake sources over one shared engine. Addresses sort
// in index order, so fakes[0] is placement's node 0.
func fakeCluster(t *testing.T, n int) []*fakeSource {
	t.Helper()
	e := buildEngine(t)
	local := transport.NewLocal(func() *dlse.Engine { return e })
	fakes := make([]*fakeSource, n)
	for i := range fakes {
		fakes[i] = &fakeSource{inner: local, addr: fmt.Sprintf("node-%d", i)}
	}
	return fakes
}

func srcs(fakes []*fakeSource) []transport.SegmentSource {
	out := make([]transport.SegmentSource, len(fakes))
	for i, f := range fakes {
		out[i] = f
	}
	return out
}

// answer returns the distributed answer's item list for a scene query.
func answer(t *testing.T, r *Router, kind string) (*dlse.ResultSet, bool) {
	t.Helper()
	rs, partial, err := r.Search(context.Background(), dlse.Query{Scenes: kind}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	return rs, partial
}

// TestHedgeCutsTailLatency injects a 500ms delay into every node's primary
// role and hedges after 10ms: the answer must arrive from the raced
// replicas well before the slow legs would have, and be correct.
func TestHedgeCutsTailLatency(t *testing.T) {
	fakes := fakeCluster(t, 2)
	const slow = 500 * time.Millisecond
	fakes[0].delay = slow // primary for ordinal 0's group

	r, err := NewWithSources(srcs(fakes), Options{Replicas: 2, HedgeAfter: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := answer(t, r, "net-play") // warm reference (hedged too, same answer)

	start := time.Now()
	got, partial := answer(t, r, "net-play")
	elapsed := time.Since(start)
	if partial {
		t.Fatal("hedged answer marked partial")
	}
	if !reflect.DeepEqual(itemsOf(got), itemsOf(want)) {
		t.Fatal("hedged answer diverges")
	}
	// Generous margin: the hedge fires at 10ms; anywhere near the
	// injected 500ms means the hedge never won.
	if elapsed > slow/2 {
		t.Fatalf("hedge did not cut tail latency: %v elapsed", elapsed)
	}
	if r.hedges.Value() == 0 || r.hedgeWins.Value() == 0 {
		t.Fatalf("hedge counters off: hedges=%d wins=%d", r.hedges.Value(), r.hedgeWins.Value())
	}
}

// TestFailoverDeadReplica kills one node in a replicas=2 cluster: every
// segment still has a live replica, so answers stay byte-identical and the
// failover is counted.
func TestFailoverDeadReplica(t *testing.T) {
	fakes := fakeCluster(t, 3)
	r, err := NewWithSources(srcs(fakes), Options{Replicas: 2, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := answer(t, r, "net-play")

	fakes[1].fail.Store(true)
	got, partial := answer(t, r, "net-play")
	if partial {
		t.Fatal("failover answer marked partial")
	}
	if !reflect.DeepEqual(itemsOf(got), itemsOf(want)) {
		t.Fatal("answer diverged after killing one replica")
	}
	if r.failovers.Value() == 0 {
		t.Fatal("failover not counted")
	}
	// The dead node's health mark dropped, so the next plan avoids it:
	// no further failovers accumulate once placement has adapted.
	before := r.failovers.Value()
	if got2, _ := answer(t, r, "net-play"); !reflect.DeepEqual(itemsOf(got2), itemsOf(want)) {
		t.Fatal("answer diverged on adapted placement")
	}
	if r.failovers.Value() != before {
		t.Fatalf("adapted placement still failing over: %d -> %d", before, r.failovers.Value())
	}

	// Recovery: the node comes back, a health probe clears the mark.
	fakes[1].fail.Store(false)
	if healthy := r.CheckHealth(context.Background()); healthy != 3 {
		t.Fatalf("healthy after recovery = %d, want 3", healthy)
	}
}

// TestFailOpenVersusClosed kills one node in a replicas=1 cluster — its
// segments have no replica. Fail-closed reports unavailable; fail-open
// serves the reachable subset marked partial, a strict subset of the full
// answer.
func TestFailOpenVersusClosed(t *testing.T) {
	kw := dlse.Query{Keyword: "australian open final"}

	// Fail-closed (default): the query errors.
	fakes := fakeCluster(t, 3)
	closed, err := NewWithSources(srcs(fakes), Options{Replicas: 1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := closed.Search(context.Background(), kw, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	fakes[0].fail.Store(true)
	if _, _, err := closed.Search(context.Background(), kw, "", 0); !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("fail-closed err = %v, want ErrUnavailable", err)
	}

	// Fail-open: same cluster shape, reachable subset served and marked.
	fakes2 := fakeCluster(t, 3)
	open, err := NewWithSources(srcs(fakes2), Options{Replicas: 1, HedgeAfter: -1, FailOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	fakes2[0].fail.Store(true)
	rs, partial, err := open.Search(context.Background(), kw, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !partial {
		t.Fatal("fail-open answer not marked partial")
	}
	if len(rs.Items) >= full.Total {
		t.Fatalf("fail-open answer not a strict subset: %d vs full %d", len(rs.Items), full.Total)
	}
	scored := map[string]float64{}
	for _, it := range full.Items {
		scored[it.Page] = it.Score
	}
	for _, it := range rs.Items {
		if s, ok := scored[it.Page]; !ok || s != it.Score {
			t.Fatalf("fail-open item %q/%v not in the full answer", it.Page, it.Score)
		}
	}
	if open.partials.Value() == 0 {
		t.Fatal("partial answer not counted")
	}

	// Semantic errors never fail open: a bad query is a 400-class error
	// even with a node down, not an empty partial answer.
	if _, _, err := open.Search(context.Background(), dlse.Query{Keyword: "the of and"}, "", 0); err == nil || errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("semantic error leaked through fail-open: %v", err)
	}
}

func itemsOf(rs *dlse.ResultSet) []dlse.Item {
	out := make([]dlse.Item, len(rs.Items))
	copy(out, rs.Items)
	return out
}
