package segfile

import (
	"io"

	"repro/internal/fsx"
)

// WriteFileAtomic durably replaces path with a segfile produced by write:
// the container is assembled in a temp file in path's directory, fsynced,
// renamed over path, and the parent directory fsynced. A crash — or an
// injected fault — at any step leaves either the old file or the complete
// new one; a reader can never map a torn container. fs selects the
// filesystem seam (nil means the real one).
func WriteFileAtomic(fs fsx.FS, path string, write func(*Writer) error) error {
	if fs == nil {
		fs = fsx.OS
	}
	return fsx.WriteAtomic(fs, path, func(w io.Writer) error {
		sw, err := NewWriter(w)
		if err != nil {
			return err
		}
		if err := write(sw); err != nil {
			return err
		}
		return sw.Close()
	})
}
