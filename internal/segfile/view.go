package segfile

// Typed zero-copy views over block bytes. On the aligned path each view is
// an unsafe.Slice aliasing the underlying bytes — no decode, no copy, no
// build tags; the safety conditions (exact length multiple, pointer
// alignment, little-endian host — the last enforced by NewReader) are
// checked at runtime and a misaligned input falls back to an explicit
// little-endian decode into a fresh slice, so callers never observe torn
// values. Blocks start on 64-byte file offsets (Align), so views over whole
// blocks of mapped files always take the aliasing path; the fallback exists
// for sub-slices and odd callers.

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Float32s views b as a little-endian []float32.
func Float32s(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("segfile: float32 view over %d bytes (not a multiple of 4)", len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(float32(0)) == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// Float64s views b as a little-endian []float64.
func Float64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("segfile: float64 view over %d bytes (not a multiple of 8)", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(float64(0)) == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// Int32s views b as a little-endian []int32.
func Int32s(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("segfile: int32 view over %d bytes (not a multiple of 4)", len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(int32(0)) == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// Uint32s views b as a little-endian []uint32.
func Uint32s(b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("segfile: uint32 view over %d bytes (not a multiple of 4)", len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(uint32(0)) == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out, nil
}

// Uint64s views b as a little-endian []uint64.
func Uint64s(b []byte) ([]uint64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("segfile: uint64 view over %d bytes (not a multiple of 8)", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(uint64(0)) == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out, nil
}

// String views b as a string aliasing the underlying bytes — valid only
// while the backing mapping is, like every block payload.
func String(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// AppendUint32s appends vs little-endian to dst — the write-side encoder
// matching Uint32s.
func AppendUint32s(dst []byte, vs []uint32) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// AppendUint64s appends vs little-endian to dst.
func AppendUint64s(dst []byte, vs []uint64) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// AppendInt32s appends vs little-endian to dst.
func AppendInt32s(dst []byte, vs []int32) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// AppendFloat32s appends vs as little-endian IEEE bits to dst.
func AppendFloat32s(dst []byte, vs []float32) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// AppendFloat64s appends vs as little-endian IEEE bits to dst.
func AppendFloat64s(dst []byte, vs []float64) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}
