// Package segfile is the memory-mappable container format of the zero-copy
// persistence path: a flat file of named, 64-byte-aligned, CRC-checksummed
// binary blocks behind a fixed header and an offset table.
//
// Layout:
//
//	header | block₀ … blockₙ₋₁ | TOC | footer
//
//	header (32 bytes):  magic "DLSEGF1\n" | u32 version | u32 byte-order
//	                    marker | u32 flags | 8 reserved | u32 header CRC
//	block:              zero padding to the next 64-byte boundary, then the
//	                    block's raw bytes (layout is the block owner's)
//	TOC:                u32 count, then per block:
//	                    u64 off | u64 len | u32 CRC | u32 nameLen | name
//	footer (40 bytes):  u64 tocOff | u64 tocLen | u32 TOC CRC | u32 reserved
//	                    | u64 fileLen | magic "DLSEGF.E"
//
// The TOC and footer sit at the END of the file so the format can be
// produced by a single forward pass over any io.Writer (SaveIndex streams)
// and still be opened with one mmap: a reader parses the fixed header, the
// fixed-size footer at the tail, and the TOC the footer points at — O(blocks)
// work no matter how large the blocks are.
//
// All multi-byte integers are little-endian, declared by the byte-order
// marker in the header; NewReader refuses to open on a big-endian host so
// the zero-copy typed views (view.go) can alias mapped bytes directly.
// (Big-endian hosts can still load the legacy store stream.)
//
// Checksum policy: the header, footer, and TOC are verified on every open —
// a truncated, rewritten, or arbitrarily corrupted file fails before any
// block is trusted. Individual block payloads carry a CRC32 (IEEE) that is
// verified by VerifyBlock/VerifyAll, NOT on open: verifying bulk blocks
// would fault every page in, defeating lazy on-demand paging. Structural
// block owners (offset tables, dictionaries) verify their small blocks at
// open and leave the bulk payloads to demand paging.
package segfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"
)

// Magic is the 8-byte file prefix identifying the segfile container —
// the sniff token format-autodetecting loaders branch on.
const Magic = "DLSEGF1\n"

const (
	footerMagic = "DLSEGF.E"
	// Version is the container format version. Readers reject files with a
	// different version rather than guessing at layout.
	Version = 1
	// byteOrderMark reads back as itself only when the file's byte order
	// matches the reader's decoder (little-endian everywhere).
	byteOrderMark = 0x0A0B0C0D
	// Align is the file offset alignment of every block: one cache line,
	// and a common divisor of every primitive size the typed views alias,
	// so a view over a whole block never needs the copying fallback.
	Align = 64

	headerSize = 32
	footerSize = 40

	// maxBlocks and maxNameLen bound TOC parsing against hostile counts.
	maxBlocks  = 1 << 20
	maxNameLen = 4096
)

// hostLittleEndian reports whether this host stores integers little-endian.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ---------------------------------------------------------------- writer

type tocEntry struct {
	name string
	off  uint64
	len  uint64
	crc  uint32
}

// Writer produces a segfile with a single forward pass over w. Blocks are
// written in Block call order; Close appends the TOC and footer. A Writer
// is not safe for concurrent use.
type Writer struct {
	w     io.Writer
	off   uint64
	ents  []tocEntry
	seen  map[string]struct{}
	erred error
}

// NewWriter writes the container header and returns a writer positioned at
// the first block.
func NewWriter(w io.Writer) (*Writer, error) {
	var h [headerSize]byte
	copy(h[0:8], Magic)
	binary.LittleEndian.PutUint32(h[8:12], Version)
	binary.LittleEndian.PutUint32(h[12:16], byteOrderMark)
	// h[16:20] flags, h[20:28] reserved: zero.
	binary.LittleEndian.PutUint32(h[28:32], crc32.ChecksumIEEE(h[:28]))
	if _, err := w.Write(h[:]); err != nil {
		return nil, fmt.Errorf("segfile: write header: %w", err)
	}
	return &Writer{w: w, off: headerSize, seen: map[string]struct{}{}}, nil
}

var padding [Align]byte

// Block writes one named block, padding the file to the 64-byte alignment
// boundary first. parts are concatenated — callers can assemble a block
// from several buffers without copying them together. Names must be unique
// and non-empty.
func (w *Writer) Block(name string, parts ...[]byte) error {
	if w.erred != nil {
		return w.erred
	}
	if name == "" || len(name) > maxNameLen {
		return w.fail(fmt.Errorf("segfile: bad block name %q", name))
	}
	if _, dup := w.seen[name]; dup {
		return w.fail(fmt.Errorf("segfile: duplicate block %q", name))
	}
	if pad := (Align - w.off%Align) % Align; pad != 0 {
		if _, err := w.w.Write(padding[:pad]); err != nil {
			return w.fail(fmt.Errorf("segfile: pad: %w", err))
		}
		w.off += pad
	}
	ent := tocEntry{name: name, off: w.off}
	crc := crc32.NewIEEE()
	for _, p := range parts {
		if _, err := w.w.Write(p); err != nil {
			return w.fail(fmt.Errorf("segfile: block %q: %w", name, err))
		}
		crc.Write(p)
		ent.len += uint64(len(p))
	}
	ent.crc = crc.Sum32()
	w.off += ent.len
	w.seen[name] = struct{}{}
	w.ents = append(w.ents, ent)
	return nil
}

func (w *Writer) fail(err error) error {
	w.erred = err
	return err
}

// Close writes the TOC and footer. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.erred != nil {
		return w.erred
	}
	toc := make([]byte, 0, 4+len(w.ents)*32)
	toc = binary.LittleEndian.AppendUint32(toc, uint32(len(w.ents)))
	for _, e := range w.ents {
		toc = binary.LittleEndian.AppendUint64(toc, e.off)
		toc = binary.LittleEndian.AppendUint64(toc, e.len)
		toc = binary.LittleEndian.AppendUint32(toc, e.crc)
		toc = binary.LittleEndian.AppendUint32(toc, uint32(len(e.name)))
		toc = append(toc, e.name...)
	}
	tocOff := w.off
	if _, err := w.w.Write(toc); err != nil {
		return w.fail(fmt.Errorf("segfile: write TOC: %w", err))
	}
	var f [footerSize]byte
	binary.LittleEndian.PutUint64(f[0:8], tocOff)
	binary.LittleEndian.PutUint64(f[8:16], uint64(len(toc)))
	binary.LittleEndian.PutUint32(f[16:20], crc32.ChecksumIEEE(toc))
	// f[20:24] reserved: zero.
	binary.LittleEndian.PutUint64(f[24:32], tocOff+uint64(len(toc))+footerSize)
	copy(f[32:40], footerMagic)
	if _, err := w.w.Write(f[:]); err != nil {
		return w.fail(fmt.Errorf("segfile: write footer: %w", err))
	}
	w.erred = fmt.Errorf("segfile: writer closed")
	return nil
}

// ---------------------------------------------------------------- reader

type blockRef struct {
	off uint64
	len uint64
	crc uint32
}

// Reader is a parsed view over a segfile's bytes. It never copies block
// payloads: Block returns subslices of the data it was opened over, so a
// Reader over mapped memory is a zero-copy window into the file. Reader is
// immutable after NewReader and safe for concurrent use.
type Reader struct {
	data  []byte
	refs  map[string]blockRef
	names []string // TOC order
}

// NewReader parses the container structure (header, footer, TOC) of data.
// Block payloads are NOT checksummed here — see VerifyBlock/VerifyAll and
// the package checksum policy.
func NewReader(data []byte) (*Reader, error) {
	if !hostLittleEndian {
		return nil, fmt.Errorf("segfile: big-endian hosts are not supported (use the legacy store format)")
	}
	if len(data) < headerSize+footerSize {
		return nil, fmt.Errorf("segfile: file too short (%d bytes)", len(data))
	}
	h := data[:headerSize]
	if string(h[0:8]) != Magic {
		return nil, fmt.Errorf("segfile: bad magic %q", h[0:8])
	}
	if got, want := binary.LittleEndian.Uint32(h[28:32]), crc32.ChecksumIEEE(h[:28]); got != want {
		return nil, fmt.Errorf("segfile: header checksum mismatch (got %#x, want %#x)", got, want)
	}
	if v := binary.LittleEndian.Uint32(h[8:12]); v != Version {
		return nil, fmt.Errorf("segfile: unsupported format version %d (want %d)", v, Version)
	}
	if bo := binary.LittleEndian.Uint32(h[12:16]); bo != byteOrderMark {
		return nil, fmt.Errorf("segfile: byte-order marker %#x (file not little-endian?)", bo)
	}
	f := data[len(data)-footerSize:]
	if string(f[32:40]) != footerMagic {
		return nil, fmt.Errorf("segfile: bad footer magic %q (truncated file?)", f[32:40])
	}
	if fl := binary.LittleEndian.Uint64(f[24:32]); fl != uint64(len(data)) {
		return nil, fmt.Errorf("segfile: footer records %d bytes, file has %d", fl, len(data))
	}
	if rsv := binary.LittleEndian.Uint32(f[20:24]); rsv != 0 {
		return nil, fmt.Errorf("segfile: footer reserved bytes %#x (must be zero)", rsv)
	}
	tocOff := binary.LittleEndian.Uint64(f[0:8])
	tocLen := binary.LittleEndian.Uint64(f[8:16])
	end := uint64(len(data) - footerSize)
	if tocOff < headerSize || tocOff > end || tocLen > end-tocOff {
		return nil, fmt.Errorf("segfile: TOC [%d, %d+%d) out of bounds", tocOff, tocOff, tocLen)
	}
	toc := data[tocOff : tocOff+tocLen]
	if got, want := binary.LittleEndian.Uint32(f[16:20]), crc32.ChecksumIEEE(toc); got != want {
		return nil, fmt.Errorf("segfile: TOC checksum mismatch (got %#x, want %#x)", got, want)
	}
	if len(toc) < 4 {
		return nil, fmt.Errorf("segfile: TOC too short (%d bytes)", len(toc))
	}
	count := binary.LittleEndian.Uint32(toc[:4])
	if count > maxBlocks {
		return nil, fmt.Errorf("segfile: implausible block count %d", count)
	}
	// Each entry is at least 25 bytes (24 fixed + 1 name byte), so the
	// claimed count cannot exceed what the verified TOC can physically hold
	// — preallocation below is bounded by bytes actually present.
	if uint64(count) > uint64(len(toc)-4)/25 {
		return nil, fmt.Errorf("segfile: block count %d exceeds TOC size", count)
	}
	r := &Reader{
		data:  data,
		refs:  make(map[string]blockRef, count),
		names: make([]string, 0, count),
	}
	cur := toc[4:]
	for i := uint32(0); i < count; i++ {
		if len(cur) < 24 {
			return nil, fmt.Errorf("segfile: TOC entry %d truncated", i)
		}
		ref := blockRef{
			off: binary.LittleEndian.Uint64(cur[0:8]),
			len: binary.LittleEndian.Uint64(cur[8:16]),
			crc: binary.LittleEndian.Uint32(cur[16:20]),
		}
		nameLen := binary.LittleEndian.Uint32(cur[20:24])
		if nameLen == 0 || nameLen > maxNameLen || uint64(nameLen) > uint64(len(cur)-24) {
			return nil, fmt.Errorf("segfile: TOC entry %d: bad name length %d", i, nameLen)
		}
		name := string(cur[24 : 24+nameLen])
		cur = cur[24+nameLen:]
		if ref.off%Align != 0 {
			return nil, fmt.Errorf("segfile: block %q at unaligned offset %d", name, ref.off)
		}
		if ref.off < headerSize || ref.off > tocOff || ref.len > tocOff-ref.off {
			return nil, fmt.Errorf("segfile: block %q [%d, %d+%d) out of bounds", name, ref.off, ref.off, ref.len)
		}
		if _, dup := r.refs[name]; dup {
			return nil, fmt.Errorf("segfile: duplicate block %q", name)
		}
		r.refs[name] = ref
		r.names = append(r.names, name)
	}
	return r, nil
}

// Block returns the named block's payload — a subslice of the reader's
// backing bytes, valid only while the backing mapping is.
func (r *Reader) Block(name string) ([]byte, bool) {
	ref, ok := r.refs[name]
	if !ok {
		return nil, false
	}
	return r.data[ref.off : ref.off+ref.len], true
}

// Names returns the block names in TOC (write) order.
func (r *Reader) Names() []string { return append([]string(nil), r.names...) }

// Has reports whether the named block exists.
func (r *Reader) Has(name string) bool { _, ok := r.refs[name]; return ok }

// VerifyBlock checks the named block's payload against its TOC checksum.
// It faults the block's pages in.
func (r *Reader) VerifyBlock(name string) error {
	ref, ok := r.refs[name]
	if !ok {
		return fmt.Errorf("segfile: no block %q", name)
	}
	if got := crc32.ChecksumIEEE(r.data[ref.off : ref.off+ref.len]); got != ref.crc {
		return fmt.Errorf("segfile: block %q checksum mismatch (got %#x, want %#x)", name, got, ref.crc)
	}
	return nil
}

// VerifyAll checks every block payload. It reads the whole file.
func (r *Reader) VerifyAll() error {
	for _, name := range r.names {
		if err := r.VerifyBlock(name); err != nil {
			return err
		}
	}
	return nil
}

// Size returns the total file size in bytes.
func (r *Reader) Size() int { return len(r.data) }
