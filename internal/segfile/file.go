package segfile

import (
	"fmt"
	"os"
	"sync"
)

// File is a Reader over a memory-mapped segfile. Opening costs one mmap
// plus the O(blocks) TOC parse — block payloads page in from disk on first
// touch, which is what makes cold start O(segments) and lets corpora larger
// than RAM serve queries (the kernel evicts and re-pages cold blocks), with
// co-located processes sharing the page cache for the same file.
//
// Every slice handed out by the embedded Reader aliases the mapping: it is
// valid only until Close. Close is idempotent and safe for concurrent use,
// but the caller must guarantee no reader still holds a slice.
type File struct {
	*Reader
	path      string
	mapped    bool
	closeOnce sync.Once
	release   func() error
	closeErr  error
}

// Open maps the file at path and parses its container structure.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segfile: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("segfile: %w", err)
	}
	data, release, err := mapFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	r, err := NewReader(data)
	if err != nil {
		release()
		return nil, fmt.Errorf("segfile: %s: %w", path, err)
	}
	return &File{Reader: r, path: path, mapped: usesMmap, release: release}, nil
}

// Path returns the path the file was opened from.
func (f *File) Path() string { return f.path }

// Mapped reports whether the file is memory-mapped (false on platforms
// where Open falls back to a heap read).
func (f *File) Mapped() bool { return f.mapped }

// Close releases the mapping. Idempotent.
func (f *File) Close() error {
	f.closeOnce.Do(func() { f.closeErr = f.release() })
	return f.closeErr
}
