package segfile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

func writeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Block("alpha", []byte("hello"), []byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Block("beta/0", AppendFloat32s(nil, []float32{1.5, -2.25, 3})); err != nil {
		t.Fatal(err)
	}
	if err := w.Block("empty"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := writeSample(t)
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Names(); fmt.Sprint(got) != "[alpha beta/0 empty]" {
		t.Fatalf("names = %v", got)
	}
	b, ok := r.Block("alpha")
	if !ok || string(b) != "hello world" {
		t.Fatalf("alpha = %q, %v", b, ok)
	}
	fb, ok := r.Block("beta/0")
	if !ok {
		t.Fatal("no beta/0")
	}
	fs, err := Float32s(fb)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.25 || fs[2] != 3 {
		t.Fatalf("floats = %v", fs)
	}
	eb, ok := r.Block("empty")
	if !ok || len(eb) != 0 {
		t.Fatalf("empty = %v, %v", eb, ok)
	}
	if _, ok := r.Block("missing"); ok {
		t.Fatal("found missing block")
	}
	if err := r.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockAlignment(t *testing.T) {
	data := writeSample(t)
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	base := uintptr(unsafe.Pointer(&data[0]))
	for _, name := range r.Names() {
		b, _ := r.Block(name)
		if len(b) == 0 {
			continue
		}
		off := uintptr(unsafe.Pointer(&b[0])) - base
		if off%Align != 0 {
			t.Errorf("block %q at file offset %d: not %d-aligned", name, off, Align)
		}
	}
}

func TestWriterDeterministic(t *testing.T) {
	a, b := writeSample(t), writeSample(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical writes produced different bytes")
	}
}

func TestWriterRejects(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Block(""); err == nil {
		t.Fatal("empty name accepted")
	}
	w, _ = NewWriter(&buf)
	if err := w.Block("x", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Block("x", nil); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	data := writeSample(t)
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.Block("alpha")
	b[0] ^= 0xFF
	if err := r.VerifyBlock("alpha"); err == nil {
		t.Fatal("flipped bit not detected")
	}
	if err := r.VerifyAll(); err == nil {
		t.Fatal("VerifyAll missed flipped bit")
	}
	b[0] ^= 0xFF
	if err := r.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestHostileBytes(t *testing.T) {
	data := writeSample(t)
	// Truncations at every boundary class.
	for _, n := range []int{0, 1, headerSize - 1, headerSize, headerSize + footerSize - 1, len(data) - 1} {
		if _, err := NewReader(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// Every single-byte corruption of the header or footer must be rejected
	// at parse time (both are fully covered by checksums or must-be-zero
	// rules). Corruption anywhere else must never panic; payload corruption
	// detection is TestVerifyDetectsCorruption's job.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		r, err := NewReader(mut)
		inHeader := i < headerSize
		inFooter := i >= len(data)-footerSize
		if (inHeader || inFooter) && err == nil {
			t.Errorf("flipping byte %d (header/footer) accepted", i)
		}
		if r != nil {
			_ = r.VerifyAll()
		}
	}
}

func TestViewsMisalignedFallback(t *testing.T) {
	raw := AppendFloat32s(nil, []float32{1, 2, 3, 4})
	buf := make([]byte, len(raw)+1)
	copy(buf[1:], raw)
	odd := buf[1:] // deliberately misaligned base pointer
	fs, err := Float32s(odd)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float32{1, 2, 3, 4} {
		if fs[i] != want {
			t.Fatalf("fs[%d] = %v, want %v", i, fs[i], want)
		}
	}
	if _, err := Float32s(buf[:3]); err == nil {
		t.Fatal("length not multiple of 4 accepted")
	}
	if _, err := Uint64s(buf[:7]); err == nil {
		t.Fatal("length not multiple of 8 accepted")
	}
}

func TestViewsRoundTrip(t *testing.T) {
	u32 := []uint32{0, 1, 1<<32 - 1}
	got32, err := Uint32s(AppendUint32s(nil, u32))
	if err != nil || len(got32) != len(u32) {
		t.Fatalf("u32: %v %v", got32, err)
	}
	for i := range u32 {
		if got32[i] != u32[i] {
			t.Fatalf("u32[%d] = %d", i, got32[i])
		}
	}
	i32 := []int32{-5, 0, 7}
	goti, err := Int32s(AppendInt32s(nil, i32))
	if err != nil {
		t.Fatal(err)
	}
	for i := range i32 {
		if goti[i] != i32[i] {
			t.Fatalf("i32[%d] = %d", i, goti[i])
		}
	}
	u64 := []uint64{0, 1 << 40}
	got64, err := Uint64s(AppendUint64s(nil, u64))
	if err != nil {
		t.Fatal(err)
	}
	for i := range u64 {
		if got64[i] != u64[i] {
			t.Fatalf("u64[%d] = %d", i, got64[i])
		}
	}
	f64 := []float64{1.5, -0.25}
	gotf, err := Float64s(AppendFloat64s(nil, f64))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f64 {
		if gotf[i] != f64[i] {
			t.Fatalf("f64[%d] = %v", i, gotf[i])
		}
	}
	if String([]byte("abc")) != "abc" || String(nil) != "" {
		t.Fatal("String view")
	}
}

func TestOpenFile(t *testing.T) {
	data := writeSample(t)
	path := filepath.Join(t.TempDir(), "sample.segf")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := f.Block("alpha")
	if !ok || string(b) != "hello world" {
		t.Fatalf("alpha = %q, %v", b, ok)
	}
	if err := f.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.segf")); err == nil {
		t.Fatal("opened missing file")
	}
}

func FuzzReader(f *testing.F) {
	f.Add(writeSampleBytes())
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data)
		if err != nil {
			return
		}
		for _, name := range r.Names() {
			if b, ok := r.Block(name); !ok || uint64(len(b)) > uint64(len(data)) {
				t.Fatalf("block %q inconsistent", name)
			}
			_ = r.VerifyBlock(name)
		}
	})
}

func writeSampleBytes() []byte {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Block("alpha", []byte("hello world"))
	w.Block("nums", AppendUint64s(nil, []uint64{1, 2, 3}))
	w.Close()
	return buf.Bytes()
}
