//go:build unix

package segfile

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned release function
// unmaps; after it runs, every slice handed out by the Reader over the
// mapping is invalid.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size < 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("segfile: file size %d not mappable on this platform", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("segfile: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// usesMmap reports whether Open maps files (true) or falls back to reading
// them into the heap (non-unix platforms).
const usesMmap = true
