package segfile

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fsx"
)

func writeSampleAtomic(t *testing.T, fs fsx.FS, path string) error {
	t.Helper()
	return WriteFileAtomic(fs, path, func(w *Writer) error {
		if err := w.Block("alpha", []byte("hello"), []byte(" world")); err != nil {
			return err
		}
		return w.Block("beta", AppendFloat32s(nil, []float32{1.5, -2.25, 3}))
	})
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sample.segfile")
	if err := writeSampleAtomic(t, nil, path); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	b, ok := f.Block("alpha")
	if !ok || string(b) != "hello world" {
		t.Fatalf("alpha = %q, %v", b, ok)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("temp debris: %d entries", len(ents))
	}
}

// A fault at any step of an atomic rewrite leaves either the old complete
// segfile or the new complete one — Open never sees a torn container.
func TestWriteFileAtomicFaultMatrix(t *testing.T) {
	probe := &fsx.Fault{}
	dir := t.TempDir()
	path := filepath.Join(dir, "m.segfile")
	if err := writeSampleAtomic(t, fsx.NewFaultFS(fsx.OS, probe), path); err != nil {
		t.Fatal(err)
	}
	total := probe.Count()

	for _, mode := range []fsx.Mode{fsx.ModeEIO, fsx.ModeShortWrite, fsx.ModePowerCut} {
		for k := 1; k <= total; k++ {
			dir := t.TempDir()
			path := filepath.Join(dir, "m.segfile")
			// Seed an old generation, then rewrite under fault.
			if err := WriteFileAtomic(nil, path, func(w *Writer) error {
				return w.Block("old", []byte("previous generation"))
			}); err != nil {
				t.Fatal(err)
			}
			fault := &fsx.Fault{K: k, Mode: mode}
			werr := writeSampleAtomic(t, fsx.NewFaultFS(fsx.OS, fault), path)
			f, err := Open(path)
			if err != nil {
				t.Fatalf("%v k=%d: torn container: %v", mode, k, err)
			}
			if err := f.VerifyAll(); err != nil {
				f.Close()
				t.Fatalf("%v k=%d: corrupt blocks: %v", mode, k, err)
			}
			oldGen := f.Has("old")
			newGen := f.Has("alpha") && f.Has("beta")
			f.Close()
			if !oldGen && !newGen {
				t.Fatalf("%v k=%d: neither generation present (write err %v)", mode, k, werr)
			}
			if werr == nil && fault.Fired() && !newGen && mode != fsx.ModePowerCut {
				// Only the final dir-sync step may fail after the rename
				// landed; any other successful return must expose new bytes.
				t.Logf("%v k=%d: fault fired late, old generation kept", mode, k)
			}
		}
	}
}

// Truncating a valid segfile at any offset must make Open fail cleanly —
// the checksummed header/footer/TOC reject every prefix.
func TestOpenTruncatedFileRefused(t *testing.T) {
	var full []byte
	{
		dir := t.TempDir()
		path := filepath.Join(dir, "full.segfile")
		if err := writeSampleAtomic(t, nil, path); err != nil {
			t.Fatal(err)
		}
		var err error
		full, err = os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	for cut := 0; cut < len(full); cut++ {
		path := filepath.Join(dir, "trunc.segfile")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := Open(path)
		if err == nil {
			f.Close()
			t.Fatalf("cut=%d: truncated segfile opened", cut)
		}
	}
}
