//go:build !unix

package segfile

import (
	"fmt"
	"io"
	"os"
)

// mapFile on platforms without syscall.Mmap reads the whole file into the
// heap. Opens still work everywhere; only the zero-page-in property is
// unix-specific.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size < 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("segfile: file size %d not loadable on this platform", size)
	}
	data := make([]byte, int(size))
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, fmt.Errorf("segfile: read: %w", err)
	}
	return data, func() error { return nil }, nil
}

const usesMmap = false
