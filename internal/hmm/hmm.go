// Package hmm implements discrete hidden Markov models with scaled
// forward/backward, Viterbi decoding and Baum-Welch training, plus a
// k-means codebook for quantizing continuous feature vectors into
// observation symbols.
//
// The COBRA system's companion work ("Content-based video retrieval by
// integrating spatio-temporal and stochastic recognition of events",
// reference [2] of the demo paper) recognizes tennis strokes (serve,
// forehand, backhand, volley, smash) by feeding quantized player-shape
// features into per-class HMMs and picking the class with the highest
// likelihood; this package provides that machinery.
package hmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Model is a discrete HMM with N hidden states and M observation symbols.
type Model struct {
	// N is the number of hidden states, M the observation alphabet size.
	N, M int
	// Pi is the initial state distribution (length N).
	Pi []float64
	// A is the state transition matrix (N×N, rows sum to 1).
	A [][]float64
	// B is the emission matrix (N×M, rows sum to 1).
	B [][]float64
}

// New returns a model with uniform distributions.
func New(n, m int) *Model {
	h := &Model{N: n, M: m, Pi: make([]float64, n)}
	h.A = make([][]float64, n)
	h.B = make([][]float64, n)
	for i := 0; i < n; i++ {
		h.Pi[i] = 1 / float64(n)
		h.A[i] = make([]float64, n)
		h.B[i] = make([]float64, m)
		for j := 0; j < n; j++ {
			h.A[i][j] = 1 / float64(n)
		}
		for k := 0; k < m; k++ {
			h.B[i][k] = 1 / float64(m)
		}
	}
	return h
}

// NewRandom returns a model with randomly perturbed distributions; random
// initialization breaks the symmetry that traps Baum-Welch on the uniform
// start.
func NewRandom(n, m int, rng *rand.Rand) *Model {
	h := New(n, m)
	perturb := func(row []float64) {
		var sum float64
		for i := range row {
			row[i] = 0.1 + rng.Float64()
			sum += row[i]
		}
		for i := range row {
			row[i] /= sum
		}
	}
	perturb(h.Pi)
	for i := 0; i < n; i++ {
		perturb(h.A[i])
		perturb(h.B[i])
	}
	return h
}

// Errors returned by the package.
var (
	ErrEmptySequence = errors.New("hmm: empty observation sequence")
	ErrBadSymbol     = errors.New("hmm: observation symbol out of range")
	ErrNoData        = errors.New("hmm: no training data")
)

// Validate checks the stochastic constraints.
func (h *Model) Validate() error {
	if h.N <= 0 || h.M <= 0 {
		return fmt.Errorf("hmm: invalid dimensions N=%d M=%d", h.N, h.M)
	}
	checkRow := func(row []float64, what string) error {
		var sum float64
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("hmm: negative/NaN probability in %s", what)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("hmm: %s sums to %g, want 1", what, sum)
		}
		return nil
	}
	if err := checkRow(h.Pi, "Pi"); err != nil {
		return err
	}
	for i := range h.A {
		if err := checkRow(h.A[i], fmt.Sprintf("A[%d]", i)); err != nil {
			return err
		}
		if err := checkRow(h.B[i], fmt.Sprintf("B[%d]", i)); err != nil {
			return err
		}
	}
	return nil
}

func (h *Model) checkObs(obs []int) error {
	if len(obs) == 0 {
		return ErrEmptySequence
	}
	for _, o := range obs {
		if o < 0 || o >= h.M {
			return fmt.Errorf("%w: %d (M=%d)", ErrBadSymbol, o, h.M)
		}
	}
	return nil
}

// forwardScaled runs the scaled forward pass, returning per-step alpha
// matrices and scale factors. logProb = -sum(log c_t).
func (h *Model) forwardScaled(obs []int) (alpha [][]float64, scales []float64) {
	T := len(obs)
	alpha = make([][]float64, T)
	scales = make([]float64, T)
	alpha[0] = make([]float64, h.N)
	var c float64
	for i := 0; i < h.N; i++ {
		alpha[0][i] = h.Pi[i] * h.B[i][obs[0]]
		c += alpha[0][i]
	}
	if c == 0 {
		c = math.SmallestNonzeroFloat64
	}
	scales[0] = c
	for i := 0; i < h.N; i++ {
		alpha[0][i] /= c
	}
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, h.N)
		c = 0
		for j := 0; j < h.N; j++ {
			var s float64
			for i := 0; i < h.N; i++ {
				s += alpha[t-1][i] * h.A[i][j]
			}
			alpha[t][j] = s * h.B[j][obs[t]]
			c += alpha[t][j]
		}
		if c == 0 {
			c = math.SmallestNonzeroFloat64
		}
		scales[t] = c
		for j := 0; j < h.N; j++ {
			alpha[t][j] /= c
		}
	}
	return alpha, scales
}

// LogLikelihood returns log P(obs | model) using the scaled forward pass.
func (h *Model) LogLikelihood(obs []int) (float64, error) {
	if err := h.checkObs(obs); err != nil {
		return 0, err
	}
	_, scales := h.forwardScaled(obs)
	var lp float64
	for _, c := range scales {
		lp += math.Log(c)
	}
	return lp, nil
}

// Viterbi returns the most likely hidden state path and its log
// probability.
func (h *Model) Viterbi(obs []int) ([]int, float64, error) {
	if err := h.checkObs(obs); err != nil {
		return nil, 0, err
	}
	T := len(obs)
	logA := make([][]float64, h.N)
	logB := make([][]float64, h.N)
	for i := 0; i < h.N; i++ {
		logA[i] = make([]float64, h.N)
		logB[i] = make([]float64, h.M)
		for j := 0; j < h.N; j++ {
			logA[i][j] = safeLog(h.A[i][j])
		}
		for k := 0; k < h.M; k++ {
			logB[i][k] = safeLog(h.B[i][k])
		}
	}
	delta := make([][]float64, T)
	psi := make([][]int, T)
	delta[0] = make([]float64, h.N)
	psi[0] = make([]int, h.N)
	for i := 0; i < h.N; i++ {
		delta[0][i] = safeLog(h.Pi[i]) + logB[i][obs[0]]
	}
	for t := 1; t < T; t++ {
		delta[t] = make([]float64, h.N)
		psi[t] = make([]int, h.N)
		for j := 0; j < h.N; j++ {
			best, bestI := math.Inf(-1), 0
			for i := 0; i < h.N; i++ {
				if v := delta[t-1][i] + logA[i][j]; v > best {
					best, bestI = v, i
				}
			}
			delta[t][j] = best + logB[j][obs[t]]
			psi[t][j] = bestI
		}
	}
	best, bestI := math.Inf(-1), 0
	for i := 0; i < h.N; i++ {
		if delta[T-1][i] > best {
			best, bestI = delta[T-1][i], i
		}
	}
	path := make([]int, T)
	path[T-1] = bestI
	for t := T - 2; t >= 0; t-- {
		path[t] = psi[t+1][path[t+1]]
	}
	return path, best, nil
}

func safeLog(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return math.Log(v)
}

// TrainConfig tunes Baum-Welch.
type TrainConfig struct {
	// MaxIters caps the EM iterations (default 50).
	MaxIters int
	// Tol stops training when the total log-likelihood improves by less
	// than Tol (default 1e-4).
	Tol float64
	// Smoothing is added to every accumulator to avoid zero probabilities
	// (default 1e-6).
	Smoothing float64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.MaxIters == 0 {
		c.MaxIters = 50
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	if c.Smoothing == 0 {
		c.Smoothing = 1e-6
	}
	return c
}

// BaumWelch trains the model in place on multiple observation sequences,
// returning the final total log-likelihood and iteration count.
func (h *Model) BaumWelch(seqs [][]int, cfg TrainConfig) (float64, int, error) {
	cfg = cfg.withDefaults()
	if len(seqs) == 0 {
		return 0, 0, ErrNoData
	}
	for _, s := range seqs {
		if err := h.checkObs(s); err != nil {
			return 0, 0, err
		}
	}
	prevLL := math.Inf(-1)
	iters := 0
	for iter := 0; iter < cfg.MaxIters; iter++ {
		iters = iter + 1
		piAcc := make([]float64, h.N)
		aNum := make([][]float64, h.N)
		aDen := make([]float64, h.N)
		bNum := make([][]float64, h.N)
		bDen := make([]float64, h.N)
		for i := 0; i < h.N; i++ {
			aNum[i] = make([]float64, h.N)
			bNum[i] = make([]float64, h.M)
		}
		var totalLL float64
		for _, obs := range seqs {
			T := len(obs)
			alpha, scales := h.forwardScaled(obs)
			for _, c := range scales {
				totalLL += math.Log(c)
			}
			// Scaled backward pass.
			beta := make([][]float64, T)
			beta[T-1] = make([]float64, h.N)
			for i := 0; i < h.N; i++ {
				beta[T-1][i] = 1 / scales[T-1]
			}
			for t := T - 2; t >= 0; t-- {
				beta[t] = make([]float64, h.N)
				for i := 0; i < h.N; i++ {
					var s float64
					for j := 0; j < h.N; j++ {
						s += h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
					}
					beta[t][i] = s / scales[t]
				}
			}
			// Accumulate gamma and xi.
			for t := 0; t < T; t++ {
				var norm float64
				gamma := make([]float64, h.N)
				for i := 0; i < h.N; i++ {
					gamma[i] = alpha[t][i] * beta[t][i]
					norm += gamma[i]
				}
				if norm == 0 {
					continue
				}
				for i := 0; i < h.N; i++ {
					g := gamma[i] / norm
					if t == 0 {
						piAcc[i] += g
					}
					bNum[i][obs[t]] += g
					bDen[i] += g
					if t < T-1 {
						aDen[i] += g
					}
				}
				if t < T-1 {
					var xiNorm float64
					xi := make([][]float64, h.N)
					for i := 0; i < h.N; i++ {
						xi[i] = make([]float64, h.N)
						for j := 0; j < h.N; j++ {
							xi[i][j] = alpha[t][i] * h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
							xiNorm += xi[i][j]
						}
					}
					if xiNorm > 0 {
						for i := 0; i < h.N; i++ {
							for j := 0; j < h.N; j++ {
								aNum[i][j] += xi[i][j] / xiNorm
							}
						}
					}
				}
			}
		}
		// Re-estimate with smoothing.
		var piSum float64
		for i := 0; i < h.N; i++ {
			piAcc[i] += cfg.Smoothing
			piSum += piAcc[i]
		}
		for i := 0; i < h.N; i++ {
			h.Pi[i] = piAcc[i] / piSum
			var rowSum float64
			for j := 0; j < h.N; j++ {
				aNum[i][j] += cfg.Smoothing
				rowSum += aNum[i][j]
			}
			for j := 0; j < h.N; j++ {
				h.A[i][j] = aNum[i][j] / rowSum
			}
			var bSum float64
			for k := 0; k < h.M; k++ {
				bNum[i][k] += cfg.Smoothing
				bSum += bNum[i][k]
			}
			for k := 0; k < h.M; k++ {
				h.B[i][k] = bNum[i][k] / bSum
			}
		}
		if totalLL-prevLL < cfg.Tol && iter > 0 {
			prevLL = totalLL
			break
		}
		prevLL = totalLL
	}
	return prevLL, iters, nil
}

// Sample generates an observation sequence of length T from the model.
func (h *Model) Sample(T int, rng *rand.Rand) []int {
	obs := make([]int, T)
	state := sampleFrom(h.Pi, rng)
	for t := 0; t < T; t++ {
		obs[t] = sampleFrom(h.B[state], rng)
		state = sampleFrom(h.A[state], rng)
	}
	return obs
}

func sampleFrom(dist []float64, rng *rand.Rand) int {
	r := rng.Float64()
	var cum float64
	for i, p := range dist {
		cum += p
		if r < cum {
			return i
		}
	}
	return len(dist) - 1
}
