package hmm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Classifier holds one trained HMM per class and labels sequences by
// maximum likelihood — the stroke recognizer of the companion paper.
type Classifier struct {
	models map[string]*Model
}

// ClassifierConfig tunes per-class training.
type ClassifierConfig struct {
	// States is the number of hidden states per class model (default 4).
	States int
	// Symbols is the observation alphabet size (required).
	Symbols int
	// Train tunes Baum-Welch.
	Train TrainConfig
	// Restarts trains each class model this many times from different
	// random initializations and keeps the best (default 3).
	Restarts int
	// Seed drives the random initializations.
	Seed int64
}

func (c ClassifierConfig) withDefaults() ClassifierConfig {
	if c.States == 0 {
		c.States = 4
	}
	if c.Restarts == 0 {
		c.Restarts = 3
	}
	return c
}

// TrainClassifier fits one HMM per class on the labelled sequences.
func TrainClassifier(data map[string][][]int, cfg ClassifierConfig) (*Classifier, error) {
	cfg = cfg.withDefaults()
	if cfg.Symbols <= 0 {
		return nil, fmt.Errorf("hmm: classifier needs Symbols > 0")
	}
	if len(data) == 0 {
		return nil, ErrNoData
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Classifier{models: map[string]*Model{}}
	// Deterministic class order for reproducible training.
	classes := make([]string, 0, len(data))
	for cl := range data {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	for _, class := range classes {
		seqs := data[class]
		if len(seqs) == 0 {
			return nil, fmt.Errorf("hmm: class %q has no training sequences", class)
		}
		var best *Model
		bestLL := math.Inf(-1)
		for r := 0; r < cfg.Restarts; r++ {
			m := NewRandom(cfg.States, cfg.Symbols, rng)
			ll, _, err := m.BaumWelch(seqs, cfg.Train)
			if err != nil {
				return nil, fmt.Errorf("hmm: training class %q: %w", class, err)
			}
			if ll > bestLL {
				bestLL, best = ll, m
			}
		}
		c.models[class] = best
	}
	return c, nil
}

// Classes returns the sorted class labels.
func (c *Classifier) Classes() []string {
	out := make([]string, 0, len(c.models))
	for cl := range c.models {
		out = append(out, cl)
	}
	sort.Strings(out)
	return out
}

// Model returns the trained model for a class, or nil.
func (c *Classifier) Model(class string) *Model { return c.models[class] }

// Classify labels a sequence with the maximum-likelihood class; it returns
// the class, its log-likelihood, and the per-class log-likelihoods.
func (c *Classifier) Classify(obs []int) (string, float64, map[string]float64, error) {
	if len(c.models) == 0 {
		return "", 0, nil, ErrNoData
	}
	scores := make(map[string]float64, len(c.models))
	best := ""
	bestLL := math.Inf(-1)
	for _, class := range c.Classes() {
		ll, err := c.models[class].LogLikelihood(obs)
		if err != nil {
			return "", 0, nil, err
		}
		scores[class] = ll
		if ll > bestLL {
			bestLL, best = ll, class
		}
	}
	return best, bestLL, scores, nil
}

// Codebook quantizes continuous feature vectors into discrete observation
// symbols via nearest-centroid lookup (k-means codebook), the front end of
// the stroke recognizer.
type Codebook struct {
	// Centers are the codeword vectors.
	Centers [][]float64
}

// FitCodebook runs Lloyd's k-means on the data. All vectors must share one
// dimensionality. The fit is deterministic for a given seed.
func FitCodebook(data [][]float64, k, iters int, seed int64) (*Codebook, error) {
	if len(data) == 0 {
		return nil, ErrNoData
	}
	if k <= 0 || k > len(data) {
		return nil, fmt.Errorf("hmm: invalid codebook size %d for %d vectors", k, len(data))
	}
	dim := len(data[0])
	for _, v := range data {
		if len(v) != dim {
			return nil, fmt.Errorf("hmm: inconsistent vector dimension %d vs %d", len(v), dim)
		}
	}
	if iters <= 0 {
		iters = 20
	}
	rng := rand.New(rand.NewSource(seed))
	// k-means++ seeding: spread the initial centres proportionally to the
	// squared distance from the nearest existing centre, which avoids the
	// local optima plain random seeding falls into.
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), data[rng.Intn(len(data))]...))
	d2 := make([]float64, len(data))
	for len(centers) < k {
		var total float64
		for i, v := range data {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(v, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(len(data))
		} else {
			r := rng.Float64() * total
			var cum float64
			for i, d := range d2 {
				cum += d
				if r < cum {
					pick = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), data[pick]...))
	}
	assign := make([]int, len(data))
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range data {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := sqDist(v, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Update step.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, v := range data {
			c := assign[i]
			counts[c]++
			for d := range v {
				sums[c][d] += v[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed empty cluster with a random point.
				centers[c] = append([]float64(nil), data[rng.Intn(len(data))]...)
				continue
			}
			for d := 0; d < dim; d++ {
				centers[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	return &Codebook{Centers: centers}, nil
}

// Encode returns the index of the nearest codeword.
func (cb *Codebook) Encode(v []float64) int {
	best, bestD := 0, math.Inf(1)
	for c := range cb.Centers {
		if d := sqDist(v, cb.Centers[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// EncodeSeries quantizes a whole feature-vector sequence.
func (cb *Codebook) EncodeSeries(vs [][]float64) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = cb.Encode(v)
	}
	return out
}

// Size returns the number of codewords.
func (cb *Codebook) Size() int { return len(cb.Centers) }

func sqDist(a, b []float64) float64 {
	var s float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
