package hmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewModelsValid(t *testing.T) {
	if err := New(3, 5).Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := NewRandom(4, 6, rng).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	m := New(2, 2)
	m.Pi[0] = 0.9 // sums to 1.4
	if err := m.Validate(); err == nil {
		t.Fatal("bad Pi accepted")
	}
	m = New(2, 2)
	m.A[0][0] = -0.5
	if err := m.Validate(); err == nil {
		t.Fatal("negative prob accepted")
	}
}

func TestLogLikelihoodKnownModel(t *testing.T) {
	// Deterministic model: always state 0, always emits symbol 0.
	m := New(1, 2)
	m.B[0] = []float64{1, 0}
	ll, err := m.LogLikelihood([]int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll) > 1e-9 {
		t.Fatalf("certain sequence ll = %v, want 0", ll)
	}
	// Impossible observation: probability ~0.
	ll, _ = m.LogLikelihood([]int{1})
	if ll > -100 {
		t.Fatalf("impossible sequence ll = %v, want very negative", ll)
	}
}

func TestLogLikelihoodTwoState(t *testing.T) {
	// Hand-computable: P(obs=[0]) = pi0*b0(0) + pi1*b1(0) = .5*.8+.5*.3 = .55
	m := New(2, 2)
	m.B[0] = []float64{0.8, 0.2}
	m.B[1] = []float64{0.3, 0.7}
	ll, err := m.LogLikelihood([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll-math.Log(0.55)) > 1e-9 {
		t.Fatalf("ll = %v, want log(0.55)", ll)
	}
}

func TestObservationValidation(t *testing.T) {
	m := New(2, 3)
	if _, err := m.LogLikelihood(nil); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if _, err := m.LogLikelihood([]int{0, 3}); err == nil {
		t.Fatal("out-of-range symbol accepted")
	}
	if _, _, err := m.Viterbi([]int{-1}); err == nil {
		t.Fatal("negative symbol accepted")
	}
}

func TestViterbiRecoversStates(t *testing.T) {
	// Two nearly-deterministic states with distinct emissions.
	m := New(2, 2)
	m.Pi = []float64{1, 0}
	m.A = [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	m.B = [][]float64{{0.95, 0.05}, {0.05, 0.95}}
	obs := []int{0, 0, 0, 1, 1, 1, 0, 0}
	path, lp, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 1, 1, 1, 0, 0}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if math.IsInf(lp, -1) {
		t.Fatal("viterbi logprob is -inf")
	}
}

func TestBaumWelchImprovesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Ground-truth generator model.
	gen := New(2, 4)
	gen.Pi = []float64{1, 0}
	gen.A = [][]float64{{0.8, 0.2}, {0.3, 0.7}}
	gen.B = [][]float64{{0.7, 0.2, 0.05, 0.05}, {0.05, 0.05, 0.2, 0.7}}
	var seqs [][]int
	for i := 0; i < 30; i++ {
		seqs = append(seqs, gen.Sample(25, rng))
	}
	m := NewRandom(2, 4, rng)
	before := totalLL(t, m, seqs)
	ll, iters, err := m.BaumWelch(seqs, TrainConfig{MaxIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Fatal("no iterations run")
	}
	after := totalLL(t, m, seqs)
	if after <= before {
		t.Fatalf("training did not improve likelihood: %v -> %v", before, after)
	}
	// The reported LL is evaluated before the final re-estimation step, so
	// the returned model can only be at least as good.
	if after < ll-1e-6 {
		t.Fatalf("recomputed ll %v below reported %v", after, ll)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("trained model invalid: %v", err)
	}
}

func totalLL(t *testing.T, m *Model, seqs [][]int) float64 {
	t.Helper()
	var s float64
	for _, q := range seqs {
		ll, err := m.LogLikelihood(q)
		if err != nil {
			t.Fatal(err)
		}
		s += ll
	}
	return s
}

func TestBaumWelchNoData(t *testing.T) {
	m := New(2, 2)
	if _, _, err := m.BaumWelch(nil, TrainConfig{}); err != ErrNoData {
		t.Fatalf("err = %v", err)
	}
}

// Property: trained models always satisfy stochastic constraints.
func TestBaumWelchStochasticProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := NewRandom(3, 5, rng)
		var seqs [][]int
		for i := 0; i < 5; i++ {
			seqs = append(seqs, gen.Sample(15, rng))
		}
		m := NewRandom(3, 5, rng)
		if _, _, err := m.BaumWelch(seqs, TrainConfig{MaxIters: 10}); err != nil {
			return false
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleRespectsAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewRandom(3, 4, rng)
	obs := m.Sample(100, rng)
	if len(obs) != 100 {
		t.Fatalf("sampled %d", len(obs))
	}
	for _, o := range obs {
		if o < 0 || o >= 4 {
			t.Fatalf("symbol %d out of range", o)
		}
	}
}

func TestStrokeClassifierAccuracy(t *testing.T) {
	train := StrokeDataset(30, 0.05, 11)
	test := StrokeDataset(20, 0.05, 99)
	cls, err := TrainClassifier(train, ClassifierConfig{
		States: 4, Symbols: StrokeAlphabet, Seed: 5,
		Train: TrainConfig{MaxIters: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for class, seqs := range test {
		for _, q := range seqs {
			got, _, _, err := cls.Classify(q)
			if err != nil {
				t.Fatal(err)
			}
			if got == class {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Fatalf("stroke accuracy %.2f, want >= 0.9", acc)
	}
}

func TestClassifierScoresComplete(t *testing.T) {
	train := StrokeDataset(10, 0.05, 21)
	cls, err := TrainClassifier(train, ClassifierConfig{Symbols: StrokeAlphabet, Seed: 1, Train: TrainConfig{MaxIters: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Classes()) != len(StrokeClasses) {
		t.Fatalf("classes = %v", cls.Classes())
	}
	_, _, scores, err := cls.Classify(GenerateStroke("serve", rand.New(rand.NewSource(2)), 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(StrokeClasses) {
		t.Fatalf("scores = %v", scores)
	}
	if cls.Model("serve") == nil || cls.Model("cartwheel") != nil {
		t.Fatal("Model lookup broken")
	}
}

func TestTrainClassifierErrors(t *testing.T) {
	if _, err := TrainClassifier(nil, ClassifierConfig{Symbols: 4}); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := TrainClassifier(map[string][][]int{"a": {{0}}}, ClassifierConfig{}); err == nil {
		t.Fatal("missing Symbols accepted")
	}
	if _, err := TrainClassifier(map[string][][]int{"a": {}}, ClassifierConfig{Symbols: 4}); err == nil {
		t.Fatal("class without sequences accepted")
	}
}

func TestCodebookQuantization(t *testing.T) {
	// Three well-separated clusters.
	var data [][]float64
	rng := rand.New(rand.NewSource(4))
	centers := [][]float64{{0, 0}, {10, 10}, {-8, 6}}
	for i := 0; i < 300; i++ {
		c := centers[i%3]
		data = append(data, []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5})
	}
	cb, err := FitCodebook(data, 3, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Size() != 3 {
		t.Fatalf("size = %d", cb.Size())
	}
	// Points near each true centre must share a codeword, distinct from
	// the others.
	codes := map[int]int{}
	for i, c := range centers {
		codes[i] = cb.Encode(c)
	}
	if codes[0] == codes[1] || codes[1] == codes[2] || codes[0] == codes[2] {
		t.Fatalf("clusters conflated: %v", codes)
	}
	series := cb.EncodeSeries(data[:6])
	if len(series) != 6 {
		t.Fatalf("series len = %d", len(series))
	}
}

func TestCodebookErrors(t *testing.T) {
	if _, err := FitCodebook(nil, 3, 10, 1); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := FitCodebook([][]float64{{1}}, 5, 10, 1); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := FitCodebook([][]float64{{1, 2}, {1}}, 1, 10, 1); err == nil {
		t.Fatal("ragged data accepted")
	}
}

func TestStrokeDatasetDeterministic(t *testing.T) {
	a := StrokeDataset(5, 0.1, 42)
	b := StrokeDataset(5, 0.1, 42)
	for class := range a {
		for i := range a[class] {
			if len(a[class][i]) != len(b[class][i]) {
				t.Fatal("dataset not deterministic")
			}
			for j := range a[class][i] {
				if a[class][i][j] != b[class][i][j] {
					t.Fatal("dataset not deterministic")
				}
			}
		}
	}
	if GenerateStroke("moonwalk", rand.New(rand.NewSource(1)), 0) != nil {
		t.Fatal("unknown stroke generated")
	}
}
