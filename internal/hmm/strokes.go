package hmm

import (
	"math/rand"
	"sort"
)

// Stroke classes recognized by the companion paper's stochastic recognizer.
var StrokeClasses = []string{"backhand", "forehand", "serve", "smash", "volley"}

// StrokeAlphabet is the observation alphabet size of the synthetic stroke
// generator: quantized arm/racket pose codes.
const StrokeAlphabet = 10

// strokePatterns defines, per stroke, the canonical pose-code progression
// the synthetic generator follows. The patterns mimic how quantized player
// silhouette features evolve through a stroke: each stroke visits a
// distinct sequence of pose codes with class-specific dwell times.
var strokePatterns = map[string][]int{
	"serve":    {0, 1, 2, 3, 4, 3},
	"smash":    {0, 2, 3, 4, 4, 2},
	"forehand": {5, 6, 7, 6, 5},
	"backhand": {5, 8, 9, 8, 5},
	"volley":   {6, 7, 7, 6},
}

// GenerateStroke produces one noisy observation sequence for the given
// stroke class: the canonical pattern with randomized dwell times and a
// noise probability of emitting a random pose code.
func GenerateStroke(class string, rng *rand.Rand, noise float64) []int {
	pattern, ok := strokePatterns[class]
	if !ok {
		return nil
	}
	var obs []int
	for _, code := range pattern {
		dwell := 2 + rng.Intn(3) // 2-4 frames per pose
		for d := 0; d < dwell; d++ {
			c := code
			if rng.Float64() < noise {
				c = rng.Intn(StrokeAlphabet)
			}
			obs = append(obs, c)
		}
	}
	return obs
}

// StrokeDataset generates a labelled dataset: perClass sequences for every
// stroke class, deterministic for a seed.
func StrokeDataset(perClass int, noise float64, seed int64) map[string][][]int {
	rng := rand.New(rand.NewSource(seed))
	out := map[string][][]int{}
	classes := append([]string(nil), StrokeClasses...)
	sort.Strings(classes)
	for _, class := range classes {
		seqs := make([][]int, perClass)
		for i := range seqs {
			seqs[i] = GenerateStroke(class, rng, noise)
		}
		out[class] = seqs
	}
	return out
}
