package repro

// End-to-end lock of the segfile persistence path: a library loaded from
// the memory-mapped zero-copy format answers every query form
// byte-identically to the heap-loaded (legacy-format) library — scene
// lookups, combined queries, keyword retrieval, paginated cursor walks —
// across 1-, 2-, and 3-segment corpora, through compaction replay, and
// under concurrent Search+Commit.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// segfileVariants persists lib in every format/loader combination and
// returns the reloaded libraries, keyed by variant name.
func segfileVariants(t *testing.T, lib *Library) map[string]*Library {
	t.Helper()
	var sf, lg bytes.Buffer
	if err := lib.SaveIndexAs(&sf, FormatSegfile); err != nil {
		t.Fatal(err)
	}
	if err := lib.SaveIndexAs(&lg, FormatLegacy); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sfPath := filepath.Join(dir, "lib.segf")
	lgPath := filepath.Join(dir, "lib.db")
	if err := os.WriteFile(sfPath, sf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lgPath, lg.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out := map[string]*Library{}
	var err error
	if out["segfile-bytes"], err = LoadLibrary(bytes.NewReader(sf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out["segfile-mmap"], err = LoadLibraryFile(sfPath); err != nil {
		t.Fatal(err)
	}
	if out["legacy-stream"], err = LoadLibrary(bytes.NewReader(lg.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out["legacy-file"], err = LoadLibraryFile(lgPath); err != nil {
		t.Fatal(err)
	}
	return out
}

// compareSearch requires dl and ref to answer q identically, unpaginated
// and via a cursor walk.
func compareSearch(t *testing.T, ref, dl *DigitalLibrary, q Query) {
	t.Helper()
	ctx := context.Background()
	want, werr := ref.Search(ctx, q)
	got, gerr := dl.Search(ctx, q)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("%+v: err %v vs %v", q, werr, gerr)
	}
	if werr != nil {
		return
	}
	if !reflect.DeepEqual(want.Items, got.Items) || want.Total != got.Total {
		t.Fatalf("%+v: answers diverge (%d vs %d items)", q, len(want.Items), len(got.Items))
	}
	var walked []Item
	var cur Cursor
	for {
		page, err := dl.Search(ctx, q, WithLimit(2), WithCursor(cur))
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, page.Items...)
		if page.Cursor == "" {
			break
		}
		cur = page.Cursor
	}
	if !reflect.DeepEqual(walked, want.Items) {
		t.Fatalf("%+v: paginated walk diverges", q)
	}
}

func TestSegfileLibraryMatchesHeap(t *testing.T) {
	vids := batchTestCorpus(t)
	jobs := batchJobs(vids)
	site := v2Site(t)
	for _, build := range []struct {
		name   string
		lib    *Library
		nparts int
	}{
		{"segs=1", buildSegmentedLib(t, jobs, len(jobs)), 1},
		{"segs=2", buildSegmentedLib(t, jobs, 3, 3), 2},
		{"segs=3", buildSegmentedLib(t, jobs, 2, 2, 2), 3},
	} {
		t.Run(build.name, func(t *testing.T) {
			kinds := segLibKinds(t, build.lib)
			queries := []Query{
				{Keyword: "australian open champion"},
				{Source: `find Player where sex = "female" and exists wonFinals`},
			}
			for _, kind := range kinds {
				queries = append(queries, Query{Scenes: kind})
			}
			refDL, err := NewDigitalLibrary(site, build.lib)
			if err != nil {
				t.Fatal(err)
			}
			for name, loaded := range segfileVariants(t, build.lib) {
				if got := loaded.View().NumSegments(); got != build.nparts {
					t.Fatalf("%s: %d segments, want %d", name, got, build.nparts)
				}
				if loaded.View().Stats() != build.lib.View().Stats() {
					t.Fatalf("%s: stats diverge", name)
				}
				dl, err := NewDigitalLibrary(site, loaded)
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range queries {
					compareSearch(t, refDL, dl, q)
				}
				// Library-level scene reads too.
				for _, kind := range kinds {
					want, _ := build.lib.Scenes(kind)
					got, err := loaded.Scenes(kind)
					if err != nil || !reflect.DeepEqual(want, got) {
						t.Fatalf("%s: Scenes(%q) diverge (%v)", name, kind, err)
					}
				}
			}
		})
	}
}

// TestSegfileCompactionReplay locks compaction over a segfile-loaded
// library: hydrate-and-merge answers exactly like compacting the original,
// and the compacted single segment is byte-identical to the monolithic
// build's.
func TestSegfileCompactionReplay(t *testing.T) {
	vids := batchTestCorpus(t)
	jobs := batchJobs(vids)
	mono := buildSegmentedLib(t, jobs, len(jobs))
	lib := buildSegmentedLib(t, jobs, 2, 2, 2)
	kinds := segLibKinds(t, mono)

	for name, loaded := range segfileVariants(t, lib) {
		changed, err := loaded.Compact(0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !changed || loaded.View().NumSegments() != 1 {
			t.Fatalf("%s: changed=%t segments=%d", name, changed, loaded.View().NumSegments())
		}
		for _, kind := range kinds {
			want, _ := mono.Scenes(kind)
			got, err := loaded.Scenes(kind)
			if err != nil || !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: Scenes(%q) diverge after compaction (%v)", name, kind, err)
			}
		}
		var got, want bytes.Buffer
		if err := loaded.Index().Serialize(&got); err != nil {
			t.Fatal(err)
		}
		if err := mono.Index().Serialize(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("%s: compacted segment not byte-identical to monolithic", name)
		}
	}
}

// TestSegfileSaveLoadSaveStable locks save→load→save byte stability for
// both formats (the determinism the bench trajectory and cache layers
// rely on).
func TestSegfileSaveLoadSaveStable(t *testing.T) {
	vids := batchTestCorpus(t)
	jobs := batchJobs(vids)
	lib := buildSegmentedLib(t, jobs, 3, 3)
	for _, format := range []IndexFormat{FormatSegfile, FormatLegacy} {
		var first bytes.Buffer
		if err := lib.SaveIndexAs(&first, format); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadLibrary(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := loaded.SaveIndexAs(&second, format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("format %d: save→load→save changed bytes", format)
		}
	}
}

// TestSegfileConcurrentSearchCommit is the -race lock for serving from a
// memory-mapped library while committing into it: lazy first-touch decode
// races harmlessly with queries, a commit hydrates and extends the set,
// and answers before/after stay consistent with the heap path.
func TestSegfileConcurrentSearchCommit(t *testing.T) {
	vids := batchTestCorpus(t)
	jobs := batchJobs(vids)
	site := v2Site(t)
	base := buildSegmentedLib(t, jobs[:4], 2, 2)
	kind := segLibKinds(t, base)[0]

	var sf bytes.Buffer
	if err := base.SaveIndexAs(&sf, FormatSegfile); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lib.segf")
	if err := os.WriteFile(path, sf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	lib, err := LoadLibraryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := NewDigitalLibrary(site, lib)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	golden, err := dl.Search(ctx, Query{Scenes: kind})
	if err != nil {
		t.Fatal(err)
	}
	preSnap := dl.Snapshot()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rs, err := dl.Search(ctx, Query{Scenes: kind})
				if err != nil {
					t.Errorf("search during commit: %v", err)
					return
				}
				if rs.Snapshot == preSnap && !reflect.DeepEqual(rs.Items, golden.Items) {
					t.Error("pre-commit snapshot served post-commit items")
					return
				}
			}
		}()
	}
	if _, err := dl.Commit(ctx, jobs[4:], BatchOptions{Workers: 2}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	close(stop)
	wg.Wait()

	if n := lib.View().NumSegments(); n != 3 {
		t.Fatalf("segments after commit: %d, want 3", n)
	}
	// The extended mapped library answers exactly like the same corpus
	// built entirely on the heap.
	heap := buildSegmentedLib(t, jobs, 2, 2, 2)
	for _, k := range segLibKinds(t, heap) {
		want, _ := heap.Scenes(k)
		got, err := lib.Scenes(k)
		if err != nil || !reflect.DeepEqual(want, got) {
			t.Fatalf("Scenes(%q) diverge after mapped commit (%v)", k, err)
		}
	}
}
