package repro

// Crash-matrix tests of the durable-commit protocol: every mutating
// filesystem operation of a WAL-backed commit+checkpoint cycle is failed in
// turn — transient EIO, torn sector, full power cut — and after each
// injected crash the WAL directory is reopened with a clean filesystem,
// exactly like a reboot. The invariants:
//
//   - zero acknowledged-commit loss: every batch CommitToken acknowledged
//     is present after recovery;
//   - crash consistency: the recovered index is byte-identical to one a
//     never-crashed run would build from some superset of the acked
//     batches (a logged-but-unacked batch may legally survive);
//   - identical answers: scene queries against the recovered library equal
//     the reference's.
//
// Alongside the matrix: recovery concurrent with live /v2/search traffic
// (no partial answers, monotonic generation) and the idempotency-token
// dedup window.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/fsx"
)

// crashFixture caches the expensive immutable inputs: a small site and two
// synthetic broadcasts (one per commit batch).
var crashFixture struct {
	once   sync.Once
	site   *Site
	clips  []*Broadcast
	fixErr error
}

func crashInputs(t *testing.T) (*Site, []*Broadcast) {
	t.Helper()
	f := &crashFixture
	f.once.Do(func() {
		f.site, f.fixErr = GenerateSite(SiteConfig{
			Players: 8, YearStart: 2000, YearEnd: 2001, Seed: 11,
		})
		if f.fixErr != nil {
			return
		}
		for i := 0; i < 2; i++ {
			// Small but not degenerate: at this scale the detector still
			// finds events (clip a: a rally; clip b: a net-play), so the
			// answer comparisons below compare something non-empty.
			cfg := DefaultBroadcastConfig(int64(900 + i))
			cfg.Shots = 2
			cfg.MinShotLen, cfg.MaxShotLen = 12, 20
			var b *Broadcast
			if b, f.fixErr = GenerateBroadcast(cfg); f.fixErr != nil {
				return
			}
			f.clips = append(f.clips, b)
		}
	})
	if f.fixErr != nil {
		t.Fatalf("crash fixture: %v", f.fixErr)
	}
	return f.site, f.clips
}

// crashBatches writes the cached clips as SVF files under dir and returns
// one single-video commit batch per clip, keyed 'a', 'b', ...
func crashBatches(t *testing.T, dir string) [][]IngestJob {
	t.Helper()
	_, clips := crashInputs(t)
	batches := make([][]IngestJob, len(clips))
	for i, b := range clips {
		path := filepath.Join(dir, fmt.Sprintf("clip-%c.svf", 'a'+i))
		if err := WriteSVF(path, b.Frames, b.FPS); err != nil {
			t.Fatal(err)
		}
		batches[i] = []IngestJob{{Name: fmt.Sprintf("crash-%c", 'a'+i), Path: path}}
	}
	return batches
}

// crashKinds are the scene queries the answer comparisons run.
var crashKinds = []string{"net-play", "rally"}

// refState is one crash-consistent reference outcome: the index bytes and
// scene answers a never-crashed run produces from a given batch subset.
type refState struct {
	legacy []byte
	scenes map[string][]Scene
}

func libScenes(t *testing.T, lib *Library) map[string][]Scene {
	t.Helper()
	out := make(map[string][]Scene, len(crashKinds))
	for _, kind := range crashKinds {
		scenes, err := lib.Scenes(kind)
		if err != nil {
			t.Fatal(err)
		}
		out[kind] = scenes
	}
	return out
}

// buildRefs materializes every subset of batches that a crash can leave
// behind (batches apply atomically and in order, so subsets, not
// arbitrary interleavings), keyed by the batch letters it contains.
func buildRefs(t *testing.T, batches [][]IngestJob) map[string]refState {
	t.Helper()
	ctx := context.Background()
	subsets := []string{""}
	for i := range batches {
		for _, s := range subsets[:len(subsets):len(subsets)] {
			subsets = append(subsets, s+string(rune('a'+i)))
		}
	}
	refs := make(map[string]refState, len(subsets))
	for _, sub := range subsets {
		lib, err := NewLibrary()
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range sub {
			// Mirror the forced batch profile of the WAL commit path.
			if _, err := lib.Commit(ctx, batches[c-'a'], BatchOptions{ContinueOnError: true}); err != nil {
				t.Fatalf("reference commit %q: %v", c, err)
			}
		}
		var buf bytes.Buffer
		if err := lib.SaveIndexAs(&buf, FormatLegacy); err != nil {
			t.Fatal(err)
		}
		refs[sub] = refState{legacy: buf.Bytes(), scenes: libScenes(t, lib)}
	}
	if full := refs[subsets[len(subsets)-1]]; len(full.scenes[crashKinds[0]])+len(full.scenes[crashKinds[1]]) == 0 {
		t.Fatal("full corpus produced no scenes — answer comparisons would be vacuous")
	}
	// The matcher below identifies the recovered state by byte equality;
	// that only works if the references are pairwise distinct.
	for a, ra := range refs {
		for b, rb := range refs {
			if a != b && bytes.Equal(ra.legacy, rb.legacy) {
				t.Fatalf("reference states %q and %q are byte-identical; matrix cannot discriminate", a, b)
			}
		}
	}
	return refs
}

// runCrashProtocol executes the protocol under test against fs: open the
// WAL in dir, recover, attach, commit every batch with a token (a
// checkpoint is taken after the first), and report which batches were
// acknowledged. Filesystem failures are the point — they never fail the
// test here, they just shape what got acked.
func runCrashProtocol(t *testing.T, fs fsx.FS, dir string, batches [][]IngestJob) (acked string) {
	t.Helper()
	ctx := context.Background()
	w, err := OpenWALFS(dir, fs)
	if err != nil {
		return "" // crashed at boot: nothing acked
	}
	defer w.Close()
	lib, _, err := w.LoadBase(NewLibrary)
	if err != nil {
		return ""
	}
	if _, err := w.Replay(ctx, lib); err != nil {
		return ""
	}
	dl, err := NewDigitalLibrary(crashFixture.site, lib)
	if err != nil {
		t.Fatalf("engine build (not under fault): %v", err)
	}
	dl.AttachWAL(w)
	for i, batch := range batches {
		if _, err := dl.CommitToken(ctx, fmt.Sprintf("tok-%c", 'a'+i), batch, BatchOptions{}); err == nil {
			acked += string(rune('a' + i))
		}
		if i == 0 {
			// Mid-protocol checkpoint: snapshot + log rotation are on the
			// fault path too. A failed checkpoint must never lose commits.
			_ = dl.CheckpointWAL()
		}
	}
	return acked
}

// recoverAndMatch reboots from dir with a clean filesystem, replays, and
// returns the key of the reference state the recovered index matches
// byte-for-byte (failing the test if it matches none, or if its scene
// answers diverge from that reference).
func recoverAndMatch(t *testing.T, dir string, refs map[string]refState) string {
	t.Helper()
	w, err := OpenWALFS(dir, fsx.OS)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer w.Close()
	lib, _, err := w.LoadBase(NewLibrary)
	if err != nil {
		t.Fatalf("recovery base: %v", err)
	}
	if _, err := w.Replay(context.Background(), lib); err != nil {
		t.Fatalf("replay: %v", err)
	}
	var got bytes.Buffer
	if err := lib.SaveIndexAs(&got, FormatLegacy); err != nil {
		t.Fatal(err)
	}
	for key, ref := range refs {
		if !bytes.Equal(got.Bytes(), ref.legacy) {
			continue
		}
		if !reflect.DeepEqual(libScenes(t, lib), ref.scenes) {
			t.Fatalf("recovered index matches state %q but scene answers diverge", key)
		}
		return key
	}
	t.Fatal("recovered index is byte-identical to NO crash-consistent reference state")
	return ""
}

// TestWALCrashMatrix fails every mutating filesystem operation of a full
// commit+checkpoint cycle, in every failure mode, and proves that a
// reboot never loses an acknowledged commit and always recovers a state
// byte-identical to a never-crashed run.
func TestWALCrashMatrix(t *testing.T) {
	crashInputs(t)
	corpusDir := t.TempDir()
	batches := crashBatches(t, corpusDir)
	refs := buildRefs(t, batches)

	// Probe run: count the protocol's mutating operations fault-free, and
	// sanity-check the protocol itself while at it.
	probe := &fsx.Fault{}
	probeDir := t.TempDir()
	if acked := runCrashProtocol(t, fsx.NewFaultFS(fsx.OS, probe), probeDir, batches); acked != "ab" {
		t.Fatalf("fault-free run acked %q, want \"ab\"", acked)
	}
	if got := recoverAndMatch(t, probeDir, refs); got != "ab" {
		t.Fatalf("fault-free recovery matched %q, want \"ab\"", got)
	}
	total := probe.Count()
	if total < 12 {
		t.Fatalf("probe counted only %d mutating ops — the fault seam is not wired through the protocol", total)
	}
	t.Logf("crash matrix: %d failpoints x 3 modes", total)

	for _, mode := range []fsx.Mode{fsx.ModeEIO, fsx.ModeShortWrite, fsx.ModePowerCut} {
		for k := 1; k <= total; k++ {
			t.Run(fmt.Sprintf("%s/k=%02d", mode, k), func(t *testing.T) {
				t.Parallel() // cells are independent: own dir, own fault
				fault := &fsx.Fault{K: k, Mode: mode}
				dir := t.TempDir()
				acked := runCrashProtocol(t, fsx.NewFaultFS(fsx.OS, fault), dir, batches)
				if !fault.Fired() {
					t.Fatalf("failpoint %d never fired (protocol took a different path)", k)
				}
				match := recoverAndMatch(t, dir, refs)
				for _, c := range acked {
					if !strings.ContainsRune(match, c) {
						t.Fatalf("ACKED COMMIT LOST: batch %q acknowledged before the crash, recovered state is %q", c, match)
					}
				}
			})
		}
	}
}

// TestRecoverDuringSearch boots a server whose WAL has a non-empty tail
// while /v2/search traffic is in flight: the node serves its checkpoint
// snapshot immediately, replays the tail concurrently, and installs the
// recovered library with one swap. Queries never see a partial state —
// every answer is exactly the snapshot's or exactly the fully recovered
// one — /healthz generation is monotonic, and once recovery installs,
// answers equal the pre-crash reference.
func TestRecoverDuringSearch(t *testing.T) {
	site, _ := crashInputs(t)
	batches := crashBatches(t, t.TempDir())
	ctx := context.Background()
	dir := t.TempDir()

	// A past process: commit batch a, checkpoint, commit batch b, crash —
	// the reboot below finds a snapshot holding a and a tail holding b.
	var baseTotal, fullTotal int
	var refScenes map[string][]Scene
	{
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		lib, err := NewLibrary()
		if err != nil {
			t.Fatal(err)
		}
		dl, err := NewDigitalLibrary(site, lib)
		if err != nil {
			t.Fatal(err)
		}
		dl.AttachWAL(w)
		if _, err := dl.CommitToken(ctx, "boot-0", batches[0], BatchOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := dl.CheckpointWAL(); err != nil {
			t.Fatal(err)
		}
		baseTotal = len(libScenes(t, lib)["net-play"])
		if _, err := dl.CommitToken(ctx, "boot-1", batches[1], BatchOptions{}); err != nil {
			t.Fatal(err)
		}
		refScenes = libScenes(t, lib)
		fullTotal = len(refScenes["net-play"])
		w.Close() // crash: batch b lives only in the log tail
	}
	if baseTotal == fullTotal {
		t.Fatalf("base and recovered answers are identical (%d scenes) — staleness would be invisible", baseTotal)
	}

	// Reboot: serve the snapshot base immediately, replay the tail under
	// live traffic, and install the recovered library with one swap.
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", w.Pending())
	}
	lib, fromSnap, err := w.LoadBase(NewLibrary)
	if err != nil {
		t.Fatal(err)
	}
	if !fromSnap {
		t.Fatal("reboot did not load the checkpoint snapshot")
	}
	dl, err := NewDigitalLibrary(site, lib)
	if err != nil {
		t.Fatal(err)
	}
	dl.AttachWAL(w)
	srv := NewServer(dl, ServerOptions{})
	for name, v := range w.MetricVars() {
		srv.RegisterMetric(name, v)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastGen := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Generation must never move backwards.
				var h struct {
					Generation int64 `json:"generation"`
				}
				if err := getJSON(ts.URL+"/healthz", &h); err != nil {
					errs <- err
					return
				}
				if h.Generation < lastGen {
					errs <- fmt.Errorf("generation moved backwards: %d -> %d", lastGen, h.Generation)
					return
				}
				lastGen = h.Generation
				// Every answer is a complete state: the snapshot's before
				// the swap, the recovered library's after — never a mix.
				var s struct {
					Total int `json:"total"`
				}
				if err := getJSON(ts.URL+"/v2/search?kind=net-play", &s); err != nil {
					errs <- err
					return
				}
				if s.Total != baseTotal && s.Total != fullTotal {
					errs <- fmt.Errorf("partial answer: total = %d, want %d or %d", s.Total, baseTotal, fullTotal)
					return
				}
			}
		}()
	}

	replayed, err := w.Replay(ctx, lib)
	if err != nil {
		t.Fatalf("replay under traffic: %v", err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d, want 1", replayed)
	}
	if err := dl.Swap(lib); err != nil {
		t.Fatal(err)
	}
	// Post-install: answers equal the pre-crash reference.
	var s struct {
		Total int `json:"total"`
	}
	if err := getJSON(ts.URL+"/v2/search?kind=net-play", &s); err != nil {
		t.Fatal(err)
	}
	if s.Total != fullTotal {
		t.Fatalf("recovered answers: total = %d, want %d", s.Total, fullTotal)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// A checkpoint makes the next restart replay-free.
	if err := dl.CheckpointWAL(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Pending() != 0 {
		t.Fatalf("after checkpoint, pending = %d, want 0", w2.Pending())
	}
	lib2, fromSnap, err := w2.LoadBase(NewLibrary)
	if err != nil {
		t.Fatal(err)
	}
	if !fromSnap {
		t.Fatal("post-checkpoint recovery did not use the snapshot")
	}
	if !reflect.DeepEqual(libScenes(t, lib2), refScenes) {
		t.Fatal("snapshot-recovered answers diverge from the pre-crash reference")
	}
}

// TestWALTokenDedup locks the idempotency window: a token applies once per
// log lifetime — including across a crash-restart — and the window resets
// at a checkpoint.
func TestWALTokenDedup(t *testing.T) {
	site, _ := crashInputs(t)
	batches := crashBatches(t, t.TempDir())
	ctx := context.Background()
	dir := t.TempDir()

	boot := func(w *WAL) (*DigitalLibrary, *Library) {
		t.Helper()
		lib, _, err := w.LoadBase(NewLibrary)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Replay(ctx, lib); err != nil {
			t.Fatal(err)
		}
		dl, err := NewDigitalLibrary(site, lib)
		if err != nil {
			t.Fatal(err)
		}
		dl.AttachWAL(w)
		return dl, lib
	}
	videos := func(lib *Library) int { return lib.View().Stats().Videos }

	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	dl, lib := boot(w)
	if _, err := dl.CommitToken(ctx, "tok-dup", batches[0], BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := videos(lib); got != 1 {
		t.Fatalf("videos = %d, want 1", got)
	}
	// Same-process retry: acknowledged, not re-applied.
	res, err := dl.CommitToken(ctx, "tok-dup", batches[0], BatchOptions{})
	if err != nil || res != nil {
		t.Fatalf("duplicate commit: results=%v err=%v, want nil/nil", res, err)
	}
	if got := videos(lib); got != 1 {
		t.Fatalf("duplicate applied: videos = %d, want 1", got)
	}
	if got := w.MetricVars()["wal_duplicate_commits"].String(); got != "1" {
		t.Fatalf("wal_duplicate_commits = %s, want 1", got)
	}
	w.Close()

	// Crash-restart retry: the token is still in the log, so the retry of
	// an ambiguous failure still dedups.
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	dl2, lib2 := boot(w2)
	if got := videos(lib2); got != 1 {
		t.Fatalf("recovered videos = %d, want 1", got)
	}
	if res, err := dl2.CommitToken(ctx, "tok-dup", batches[0], BatchOptions{}); err != nil || res != nil {
		t.Fatalf("post-restart duplicate: results=%v err=%v", res, err)
	}
	if got := videos(lib2); got != 1 {
		t.Fatalf("post-restart duplicate applied: videos = %d", got)
	}

	// A checkpoint prunes the log — and with it the dedup window: the same
	// token now names a fresh commit.
	if err := dl2.CheckpointWAL(); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	dl3, lib3 := boot(w3)
	if _, err := dl3.CommitToken(ctx, "tok-dup", batches[0], BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := videos(lib3); got != 2 {
		t.Fatalf("post-checkpoint reuse: videos = %d, want 2 (window reset)", got)
	}
}

// getJSON fetches url and decodes its JSON body into out.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
