package repro

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestLibraryIndexAndScenes(t *testing.T) {
	cfg := DefaultBroadcastConfig(301)
	cfg.Shots = 6
	b, err := GenerateBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	vid, err := lib.IndexFrames("clip-301", b.Frames, b.FPS)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := lib.Segments(vid)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	// Some event kind must have scenes.
	total := 0
	for _, kind := range []string{"rally", "net-play", "service"} {
		scenes, err := lib.Scenes(kind)
		if err != nil {
			t.Fatal(err)
		}
		total += len(scenes)
		for _, s := range scenes {
			if s.Video.Name != "clip-301" {
				t.Fatalf("scene video = %q", s.Video.Name)
			}
		}
	}
	if total == 0 {
		t.Fatal("no scenes detected in generated broadcast")
	}
}

func TestLibraryPersistence(t *testing.T) {
	cfg := DefaultBroadcastConfig(302)
	cfg.Shots = 4
	b, _ := GenerateBroadcast(cfg)
	lib, _ := NewLibrary()
	if _, err := lib.IndexFrames("clip", b.Frames, b.FPS); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lib.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	lib2, err := LoadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lib2.Index().Stats() != lib.Index().Stats() {
		t.Fatal("restored index differs")
	}
}

func TestSVFRoundTripViaFacade(t *testing.T) {
	cfg := DefaultBroadcastConfig(303)
	cfg.Shots = 2
	b, _ := GenerateBroadcast(cfg)
	path := filepath.Join(t.TempDir(), "clip.svf")
	if err := WriteSVF(path, b.Frames[:20], b.FPS); err != nil {
		t.Fatal(err)
	}
	frames, fps, err := ReadSVF(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 20 || fps != b.FPS {
		t.Fatalf("got %d frames @%dfps", len(frames), fps)
	}
	lib, _ := NewLibrary()
	if _, err := lib.IndexSVF("from-file", path); err != nil {
		t.Fatal(err)
	}
}

func TestDigitalLibraryMotivatingQuery(t *testing.T) {
	site, err := GenerateSite(SiteConfig{Players: 32, YearStart: 1999, YearEnd: 2001, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	dl, err := NewDigitalLibrary(site, nil)
	if err != nil {
		t.Fatal(err)
	}
	results, err := dl.Query(`find Player where sex = "female" and exists wonFinals`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no female champions found")
	}
	// Keyword baseline works too.
	hits, err := dl.KeywordSearch("australian open final", 5)
	if err != nil || len(hits) == 0 {
		t.Fatalf("keyword baseline: %v, %v", hits, err)
	}
	// The canonical motivating query parses.
	if _, err := dl.Query(MotivatingQuery()); err != nil {
		t.Fatalf("motivating query rejected: %v", err)
	}
}

func TestGrammarExports(t *testing.T) {
	dot := GrammarDOT()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "segment") {
		t.Fatalf("DOT output malformed:\n%s", dot)
	}
	txt := GrammarText()
	if !strings.Contains(txt, "feature grammar") {
		t.Fatalf("text output malformed:\n%s", txt)
	}
}

func TestIndexFramesValidation(t *testing.T) {
	lib, _ := NewLibrary()
	if _, err := lib.IndexFrames("empty", nil, 25); err == nil {
		t.Fatal("empty frames accepted")
	}
}

func TestQueryContextAndServerFacade(t *testing.T) {
	site, err := GenerateSite(SiteConfig{Players: 32, YearStart: 1999, YearEnd: 2001, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	dl, err := NewDigitalLibrary(site, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Class: "Player", Text: "final", Limit: 5}
	seq, err := dl.QueryStruct(req)
	if err != nil {
		t.Fatal(err)
	}
	ctxRes, err := dl.QueryContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, ctxRes) {
		t.Fatal("QueryContext result differs from QueryStruct")
	}

	srv := NewServer(dl, ServerOptions{CacheSize: 16, Workers: 2})
	cold, cached, err := srv.QueryRequest(context.Background(), req)
	if err != nil || cached {
		t.Fatalf("cold serve: cached=%t err=%v", cached, err)
	}
	warm, cached, err := srv.QueryRequest(context.Background(), req)
	if err != nil || !cached {
		t.Fatalf("warm serve: cached=%t err=%v", cached, err)
	}
	if !reflect.DeepEqual(cold, warm) || !reflect.DeepEqual(cold, seq) {
		t.Fatal("served results diverge from engine results")
	}
}
