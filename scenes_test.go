package repro

import (
	"path/filepath"
	"testing"
)

// sceneFixture indexes one SVF-backed broadcast and returns the library
// plus a detected scene.
func sceneFixture(t *testing.T) (*Library, Scene) {
	t.Helper()
	cfg := DefaultBroadcastConfig(501)
	cfg.Shots = 6
	b, err := GenerateBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "clip.svf")
	if err := WriteSVF(path, b.Frames, b.FPS); err != nil {
		t.Fatal(err)
	}
	lib, err := NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.IndexSVF("clip", path); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"rally", "net-play", "service"} {
		scenes, err := lib.Scenes(kind)
		if err != nil {
			t.Fatal(err)
		}
		if len(scenes) > 0 {
			return lib, scenes[0]
		}
	}
	t.Fatal("no scenes detected in fixture broadcast")
	return nil, Scene{}
}

func TestExtractAndSaveScene(t *testing.T) {
	lib, scene := sceneFixture(t)
	frames, err := lib.ExtractScene(scene)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != scene.Event.Len() {
		t.Fatalf("extracted %d frames, want %d", len(frames), scene.Event.Len())
	}
	out := filepath.Join(t.TempDir(), "scene.svf")
	if err := lib.SaveScene(scene, out); err != nil {
		t.Fatal(err)
	}
	clip, fps, err := ReadSVF(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(clip) != len(frames) || fps != scene.Video.FPS {
		t.Fatalf("saved clip %d frames @%d, want %d @%d", len(clip), fps, len(frames), scene.Video.FPS)
	}
	for i := range clip {
		if !clip[i].Equal(frames[i]) {
			t.Fatalf("saved frame %d differs", i)
		}
	}
}

func TestExtractSceneNeedsPath(t *testing.T) {
	cfg := DefaultBroadcastConfig(502)
	cfg.Shots = 4
	b, _ := GenerateBroadcast(cfg)
	lib, _ := NewLibrary()
	if _, err := lib.IndexFrames("mem", b.Frames, b.FPS); err != nil {
		t.Fatal(err)
	}
	scenes, _ := lib.Scenes("rally")
	if len(scenes) == 0 {
		t.Skip("no rally in this seed")
	}
	if _, err := lib.ExtractScene(scenes[0]); err == nil {
		t.Fatal("pathless video extracted")
	}
	// Frames variant works.
	frames, err := ExtractSceneFrames(scenes[0], b.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != scenes[0].Event.Len() {
		t.Fatal("wrong frame count")
	}
}

func TestExtractSceneFramesBounds(t *testing.T) {
	s := Scene{Event: Event{Interval: Interval{Start: 5, End: 50}}}
	if _, err := ExtractSceneFrames(s, make([]*Image, 10)); err == nil {
		t.Fatal("out-of-range interval accepted")
	}
	s.Event.Interval = Interval{Start: 3, End: 3}
	if _, err := ExtractSceneFrames(s, make([]*Image, 10)); err == nil {
		t.Fatal("empty interval accepted")
	}
}

func TestScenesRelatedComposite(t *testing.T) {
	lib, _ := sceneFixture(t)
	// net-play during/within rally is script-dependent; the call must
	// succeed and return only same-video, correctly-related pairs.
	pairs, err := lib.ScenesRelated("net-play", "rally")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.A.VideoID != p.B.VideoID {
			t.Fatal("cross-video pair")
		}
		if p.A.Kind != "net-play" || p.B.Kind != "rally" {
			t.Fatalf("wrong kinds: %+v", p)
		}
	}
	// Service then rally within a shot: the service scripts guarantee at
	// least one such pair per service shot.
	follows, err := lib.ScenesFollowing("service", "rally", 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range follows {
		if p.B.Start < p.A.End {
			t.Fatalf("not following: %+v", p)
		}
	}
}
