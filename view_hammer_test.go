package repro

// Race hammer for the frozen columnar scene view: concurrent scene reads —
// through the engine (Search) and through a pinned SegmentedIndex snapshot
// — against a live Commit and hot engine Swaps. Run under -race this
// exercises the view's lazy build from many goroutines at once (Swap
// rebuilds engines whose vector-lane hydration reads the same shared
// partitions the readers are scanning). The pinned snapshot must answer
// byte-identically throughout, and the frozen path must still match the
// row-store reference afterwards.

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

func TestFrozenViewHammerRace(t *testing.T) {
	vids := batchTestCorpus(t)
	jobs := batchJobs(vids)
	ctx := context.Background()

	lib := buildSegmentedLib(t, jobs[:3], 2, 1) // two segments to start
	kinds := segLibKinds(t, lib)
	site := v2Site(t)
	dl, err := NewDigitalLibrary(site, lib)
	if err != nil {
		t.Fatal(err)
	}

	// Pin a pre-commit snapshot of both layers: the raw segmented view and
	// an engine answer. Both must stay byte-identical while writers run.
	pinned := lib.View()
	goldenScenes := make(map[string][]Scene, len(kinds))
	goldenItems := make(map[string][]Item, len(kinds))
	for _, kind := range kinds {
		scenes, err := pinned.Scenes(kind)
		if err != nil {
			t.Fatal(err)
		}
		goldenScenes[kind] = scenes
		rs, err := dl.Search(ctx, Query{Scenes: kind})
		if err != nil {
			t.Fatal(err)
		}
		goldenItems[kind] = rs.Items
	}
	preSnap := dl.Snapshot()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				kind := kinds[(g+i)%len(kinds)]
				if (g+i)%2 == 0 {
					rs, err := dl.Search(ctx, Query{Scenes: kind})
					if err != nil {
						t.Errorf("search during commit/swap: %v", err)
						return
					}
					if rs.Snapshot == preSnap && !reflect.DeepEqual(rs.Items, goldenItems[kind]) {
						t.Error("pre-commit snapshot served changed items")
						return
					}
				} else {
					scenes, err := pinned.Scenes(kind)
					if err != nil {
						t.Errorf("pinned scenes during commit/swap: %v", err)
						return
					}
					if !reflect.DeepEqual(scenes, goldenScenes[kind]) {
						t.Errorf("pinned snapshot answer changed for %q", kind)
						return
					}
				}
			}
		}(g)
	}

	// Writers: one live commit growing the corpus, then hot swaps — each
	// swap rebuilds an engine whose hydration reads the shared partitions.
	if _, err := dl.Commit(ctx, jobs[3:], BatchOptions{Workers: 2}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := dl.Swap(lib); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// After the dust settles: the frozen path still matches the row-store
	// reference on the grown corpus, and the pinned snapshot kept its
	// answer.
	view := lib.View()
	for _, kind := range kinds {
		got, err := view.Scenes(kind)
		if err != nil {
			t.Fatal(err)
		}
		want, err := view.ScenesReference(kind)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("post-hammer Scenes(%q) diverges from reference", kind)
		}
		if len(got) < len(goldenScenes[kind]) {
			t.Fatalf("corpus shrank for %q: %d < %d", kind, len(got), len(goldenScenes[kind]))
		}
		pinnedNow, err := pinned.Scenes(kind)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pinnedNow, goldenScenes[kind]) {
			t.Fatalf("pinned snapshot drifted for %q", kind)
		}
	}
}
