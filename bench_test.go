// Experiment harness: one benchmark per experiment in DESIGN.md §5.
//
// The demo paper contains no quantitative tables; its only figure is the
// detector dependency graph (Figure 1). E1 regenerates that figure exactly;
// E2-E9 reconstruct the quantitative behaviour of the four subsystems the
// demo integrates, with the methodology of the cited companion papers.
// Each benchmark prints its table once (on the first invocation) and then
// times the experiment's core operation for the -benchmem report.
//
// Run: go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dlse"
	"repro/internal/eval"
	"repro/internal/fde"
	"repro/internal/frame"
	"repro/internal/grammar"
	"repro/internal/hmm"
	"repro/internal/ir"
	"repro/internal/rules"
	"repro/internal/serve"
	"repro/internal/shotdet"
	"repro/internal/synth"
	"repro/internal/track"
	"repro/internal/vidfmt"
	"repro/internal/webspace"
)

// ---------------------------------------------------------------- fixtures

var (
	corpusOnce sync.Once
	corpus     []*synth.Video // 6 videos, ground truth attached
)

func benchCorpus(b *testing.B) []*synth.Video {
	b.Helper()
	corpusOnce.Do(func() {
		cfg := synth.DefaultConfig(1000)
		cfg.Shots = 10
		vids, err := synth.GenerateCorpus(cfg, 6)
		if err != nil {
			panic(err)
		}
		corpus = vids
	})
	return corpus
}

var (
	irCorpusOnce sync.Once
	irCorpus     *ir.Index
)

func benchIRCorpus(b *testing.B) *ir.Index {
	b.Helper()
	irCorpusOnce.Do(func() {
		rng := rand.New(rand.NewSource(2000))
		zipf := rand.NewZipf(rng, 1.15, 1, 2999)
		ix := ir.NewIndex()
		for d := 0; d < 20000; d++ {
			n := 40 + rng.Intn(120)
			var sb strings.Builder
			for w := 0; w < n; w++ {
				fmt.Fprintf(&sb, "w%d ", zipf.Uint64())
			}
			if _, err := ix.Add(fmt.Sprintf("d%05d", d), sb.String()); err != nil {
				panic(err)
			}
		}
		ix.Freeze()
		irCorpus = ix
	})
	return irCorpus
}

// ------------------------------------------------------------ E1: Figure 1

var fig1Once sync.Once

// BenchmarkFig1DependencyGraph regenerates Figure 1 of the paper: the
// tennis FDE detector dependency graph, from the feature grammar.
func BenchmarkFig1DependencyGraph(b *testing.B) {
	fig1Once.Do(func() {
		g := grammar.Tennis()
		fmt.Printf("\n=== E1 (Figure 1): Tennis FDE detector dependencies ===\n")
		fmt.Print(g.Text())
		fmt.Printf("--- DOT form (render with graphviz) ---\n%s\n", g.DOT())
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := grammar.Tennis()
		_ = g.DOT()
	}
}

// ----------------------------------------------- E2: shot boundary sweep

var e2Once sync.Once

// BenchmarkE2ShotBoundarySweep reproduces the segment detector's boundary
// accuracy: precision/recall across the histogram-difference threshold
// sweep, fixed vs adaptive thresholds.
func BenchmarkE2ShotBoundarySweep(b *testing.B) {
	vids := benchCorpus(b)
	e2Once.Do(func() {
		// One sweeper for the whole table: the sweep is exactly the access
		// pattern Sweeper amortizes (same footage, many configurations).
		var sweep shotdet.Sweeper
		fmt.Printf("\n=== E2: shot boundary detection, threshold sweep (%d videos) ===\n", len(vids))
		fmt.Printf("%-10s %-9s %10s %10s %10s\n", "threshold", "mode", "precision", "recall", "F1")
		for _, th := range []float64{0.05, 0.10, 0.20, 0.35, 0.50, 0.80, 1.20, 1.60, 1.90} {
			var pr eval.PR
			for _, v := range vids {
				cfg := shotdet.DefaultConfig()
				cfg.Threshold = th
				got := boundariesOf(sweep.Detect(v.Frames, cfg))
				pr.Add(eval.MatchBoundaries(got, v.Truth.Boundaries(), 2))
			}
			fmt.Printf("%-10.2f %-9s %10.3f %10.3f %10.3f\n", th, "fixed", pr.Precision(), pr.Recall(), pr.F1())
		}
		var pr eval.PR
		for _, v := range vids {
			cfg := shotdet.DefaultConfig()
			cfg.Adaptive = true
			got := boundariesOf(sweep.Detect(v.Frames, cfg))
			pr.Add(eval.MatchBoundaries(got, v.Truth.Boundaries(), 2))
		}
		fmt.Printf("%-10s %-9s %10.3f %10.3f %10.3f\n", "-", "adaptive", pr.Precision(), pr.Recall(), pr.F1())
	})
	v := vids[0]
	cfg := shotdet.DefaultConfig()
	var sweep shotdet.Sweeper
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sweep.Detect(v.Frames, cfg)
	}
	b.ReportMetric(float64(len(v.Frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

func boundariesOf(bs []shotdet.Boundary) []int {
	out := make([]int, len(bs))
	for i, bd := range bs {
		out[i] = bd.Frame
	}
	return out
}

// -------------------------------------------- E3: shot classification

var e3Once sync.Once

// BenchmarkE3ShotClassification reproduces the four-way shot classifier
// evaluation: the confusion matrix over {tennis, close-up, audience,
// other}.
func BenchmarkE3ShotClassification(b *testing.B) {
	vids := benchCorpus(b)
	cls := shotdet.NewClassifier(shotdet.DefaultClassifierConfig(synth.CourtColor))
	e3Once.Do(func() {
		conf := eval.NewConfusion("tennis", "close-up", "audience", "other")
		for _, v := range vids {
			for _, s := range v.Truth.Shots {
				got, _ := cls.ClassifyShot(v.Frames, s.Start, s.End)
				conf.Observe(s.Class.String(), got.String())
			}
		}
		fmt.Printf("\n=== E3: shot classification confusion (%d shots, accuracy %.3f) ===\n",
			conf.Total(), conf.Accuracy())
		fmt.Print(conf.String())
		for _, l := range conf.Labels {
			fmt.Printf("  %-9s %s\n", l, conf.PerClass()[l])
		}
	})
	v := vids[0]
	s := v.Truth.Shots[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = cls.ClassifyShot(v.Frames, s.Start, s.End)
	}
}

// ------------------------------------------------- E4: tracking error

var e4Once sync.Once

// BenchmarkE4TrackingError reproduces the tennis detector evaluation:
// player position error against scripted ground truth, per script and
// noise level, plus the track-loss rate.
func BenchmarkE4TrackingError(b *testing.B) {
	e4Once.Do(func() {
		fmt.Printf("\n=== E4: player tracking error (60-frame shots) ===\n")
		fmt.Printf("%-14s %-6s %12s %12s %10s\n", "script", "noise", "near err px", "far err px", "lost")
		for _, script := range synth.Scripts() {
			for _, noise := range []int{2, 4, 8} {
				cfg := synth.DefaultConfig(4000)
				cfg.Noise = noise
				frames, near, far, _, err := synth.RenderTennisShot(cfg, script, 60)
				if err != nil {
					panic(err)
				}
				res := track.TrackShot(frames, track.DefaultConfig())
				fmt.Printf("%-14s %-6d %12.2f %12.2f %9d%%\n", script, noise,
					meanTrackError(res.Near, near), meanTrackError(res.Far, far),
					100*(res.Near.LostFrames+res.Far.LostFrames)/(2*len(frames)))
			}
		}
	})
	cfg := synth.DefaultConfig(4000)
	frames, _, _, _, _ := synth.RenderTennisShot(cfg, "rally", 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = track.TrackShot(frames, track.DefaultConfig())
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

func meanTrackError(tr track.Track, truth []synth.Point) float64 {
	var sum float64
	n := 0
	for i, o := range tr.Obs {
		if i >= len(truth) {
			break
		}
		dx, dy := o.X-truth[i].X, o.Y-truth[i].Y
		sum += sqrtf(dx*dx + dy*dy)
		n++
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

func sqrtf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 24; i++ {
		x = (x + v/x) / 2
	}
	return x
}

// ------------------------------------------------ E5: event detection

var e5Once sync.Once

// BenchmarkE5EventRules reproduces the spatio-temporal rule evaluation:
// precision/recall of net-play, rally and service detection over scripted
// shots, matched by interval IoU >= 0.5.
func BenchmarkE5EventRules(b *testing.B) {
	e5Once.Do(func() {
		geomCfg := synth.DefaultConfig(0)
		eng, err := rules.NewEngine(rules.TennisRules(), rules.StandardGeometry(geomCfg.W, geomCfg.H))
		if err != nil {
			panic(err)
		}
		perKind := map[string]*eval.PR{"net-play": {}, "rally": {}, "service": {}}
		shots := 0
		for seed := int64(0); seed < 12; seed++ {
			for _, script := range synth.Scripts() {
				cfg := synth.DefaultConfig(5000 + seed)
				frames, _, _, truth, err := synth.RenderTennisShot(cfg, script, 70)
				if err != nil {
					panic(err)
				}
				shots++
				res := track.TrackShot(frames, track.DefaultConfig())
				dets := eng.Detect(fde.TrackToSeries(res), len(frames))
				for kind, pr := range perKind {
					var dIv, tIv []eval.Interval
					for _, d := range dets {
						if d.Kind == kind {
							dIv = append(dIv, eval.Interval{Start: d.Start, End: d.End, Label: kind})
						}
					}
					for _, tv := range truth {
						if string(tv.Kind) == kind {
							tIv = append(tIv, eval.Interval{Start: tv.Start, End: tv.End, Label: kind})
						}
					}
					pr.Add(eval.MatchIntervals(dIv, tIv, 0.5))
				}
			}
		}
		fmt.Printf("\n=== E5: event detection via spatio-temporal rules (%d shots) ===\n", shots)
		for _, kind := range []string{"net-play", "rally", "service"} {
			fmt.Printf("  %-9s %s\n", kind, *perKind[kind])
		}
	})
	cfg := synth.DefaultConfig(5000)
	frames, _, _, _, _ := synth.RenderTennisShot(cfg, "net-approach", 70)
	res := track.TrackShot(frames, track.DefaultConfig())
	series := fde.TrackToSeries(res)
	eng, _ := rules.NewEngine(rules.TennisRules(), rules.StandardGeometry(cfg.W, cfg.H))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.Detect(series, len(frames))
	}
}

// --------------------------------------------- E6: HMM stroke recognition

var e6Once sync.Once

// BenchmarkE6HMMStrokes reproduces the stochastic stroke recognition of
// the companion paper: per-class HMMs over quantized pose sequences,
// accuracy and confusion across observation-noise levels.
func BenchmarkE6HMMStrokes(b *testing.B) {
	e6Once.Do(func() {
		fmt.Printf("\n=== E6: HMM stroke recognition (5 classes, 30 train / 20 test per class) ===\n")
		fmt.Printf("%-8s %10s\n", "noise", "accuracy")
		var lastConf *eval.Confusion
		for _, noise := range []float64{0.02, 0.05, 0.10, 0.20, 0.35} {
			train := hmm.StrokeDataset(30, noise, 6000)
			test := hmm.StrokeDataset(20, noise, 7000)
			cls, err := hmm.TrainClassifier(train, hmm.ClassifierConfig{
				States: 4, Symbols: hmm.StrokeAlphabet, Seed: 8,
				Train: hmm.TrainConfig{MaxIters: 30},
			})
			if err != nil {
				panic(err)
			}
			conf := eval.NewConfusion(hmm.StrokeClasses...)
			for class, seqs := range test {
				for _, q := range seqs {
					got, _, _, err := cls.Classify(q)
					if err != nil {
						panic(err)
					}
					conf.Observe(class, got)
				}
			}
			fmt.Printf("%-8.2f %10.3f\n", noise, conf.Accuracy())
			lastConf = conf
		}
		fmt.Printf("confusion at noise 0.35:\n%s", lastConf.String())
	})
	train := hmm.StrokeDataset(10, 0.05, 6000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := hmm.TrainClassifier(train, hmm.ClassifierConfig{
			States: 4, Symbols: hmm.StrokeAlphabet, Seed: 8, Restarts: 1,
			Train: hmm.TrainConfig{MaxIters: 10},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------ E7: IR top-N optimization

var e7Once sync.Once

// BenchmarkE7TopNOptimization reproduces the top-N retrieval optimization
// study: postings scored and latency for the optimized algorithm vs the
// exhaustive scan, and the quality/time trade-off under unsafe budgets.
func BenchmarkE7TopNOptimization(b *testing.B) {
	ix := benchIRCorpus(b)
	queries := []string{"w3", "w1 w3", "w0 w2 w7", "w5 w11 w23 w47"}
	e7Once.Do(func() {
		fmt.Printf("\n=== E7: IR top-N optimization (20k docs, Zipf vocabulary) ===\n")
		fmt.Printf("%-8s %-12s %12s %12s %10s %10s\n", "k", "mode", "postings", "latency", "speedup", "quality")
		for _, k := range []int{10, 20, 50} {
			var fullPostings, optPostings int
			var fullDur, optDur time.Duration
			quality := 1.0
			for _, q := range queries {
				start := time.Now()
				_, fs, err := ix.Search(q, k)
				if err != nil {
					panic(err)
				}
				fullDur += time.Since(start)
				fullPostings += fs.PostingsScored
				start = time.Now()
				opt, os, err := ix.SearchTopN(q, k, ir.TopNOptions{Fragments: 32})
				if err != nil {
					panic(err)
				}
				optDur += time.Since(start)
				optPostings += os.PostingsScored
				qv, err := ir.ScoreQuality(ix, q, k, opt)
				if err != nil {
					panic(err)
				}
				if qv < quality {
					quality = qv
				}
			}
			fmt.Printf("%-8d %-12s %12d %12v %10s %10.3f\n", k, "full", fullPostings, fullDur.Round(time.Microsecond), "1.0x", 1.0)
			fmt.Printf("%-8d %-12s %12d %12v %9.1fx %10.3f\n", k, "topN-safe", optPostings, optDur.Round(time.Microsecond),
				float64(fullDur)/float64(optDur), quality)
		}
		// Budget sweep: the quality/time trade-off at k=10. Budget b means
		// the first b fragment rounds of every term's impact-ordered list.
		fmt.Printf("--- budget sweep (k=10, fragments=32) ---\n")
		fmt.Printf("%-10s %12s %10s\n", "rounds", "postings", "quality")
		for _, budget := range []int{1, 2, 4, 8, 16, 24, 32} {
			var postings int
			quality := 1.0
			for _, q := range queries {
				opt, os, err := ix.SearchTopN(q, 10, ir.TopNOptions{Fragments: 32, MaxFragments: budget})
				if err != nil {
					panic(err)
				}
				postings += os.PostingsScored
				qv, err := ir.ScoreQuality(ix, q, 10, opt)
				if err != nil {
					panic(err)
				}
				if qv < quality {
					quality = qv
				}
			}
			fmt.Printf("%-10d %12d %10.3f\n", budget, postings, quality)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.SearchTopN(queries[i%len(queries)], 10, ir.TopNOptions{Fragments: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------- E8: webspace vs keyword baseline

var e8Once sync.Once

// BenchmarkE8WebspaceVsKeyword reproduces the webspace argument: precision
// and recall of conceptual queries vs the best keyword formulation over the
// flattened pages, on five query templates including the motivating query.
func BenchmarkE8WebspaceVsKeyword(b *testing.B) {
	site, err := webspace.GenerateAusOpen(webspace.SiteConfig{
		Players: 128, YearStart: 1982, YearEnd: 2001, Seed: 8000,
	})
	if err != nil {
		b.Fatal(err)
	}
	lib, err := core.NewMetaIndex()
	if err != nil {
		b.Fatal(err)
	}
	eng, err := newDlseForBench(site, lib)
	if err != nil {
		b.Fatal(err)
	}
	type tmpl struct {
		name    string
		query   webspace.Query
		keyword string
	}
	templates := []tmpl{
		{
			"lefty female champions (motivating)",
			webspace.MotivatingQuery(),
			"left-handed female champion winner australian open",
		},
		{
			"male champions",
			webspace.Query{Class: "Player", Where: []webspace.Constraint{
				{Attr: "sex", Op: webspace.OpEq, Val: "male"},
				{Path: []string{"wonFinals"}},
			}},
			"male champion winner australian open final",
		},
		{
			"champions since 1998",
			webspace.Query{Class: "Player", Where: []webspace.Constraint{
				{Path: []string{"wonFinals"}, Attr: "year", Op: webspace.OpGe, Val: int64(1998)},
			}},
			"winner 1998 1999 2000 2001 australian open",
		},
		{
			"swiss players",
			webspace.Query{Class: "Player", Where: []webspace.Constraint{
				{Attr: "country", Op: webspace.OpEq, Val: "Switzerland"},
			}},
			"tennis player from switzerland",
		},
		{
			"left-handed players",
			webspace.Query{Class: "Player", Where: []webspace.Constraint{
				{Attr: "handedness", Op: webspace.OpEq, Val: "left"},
			}},
			"left-handed tennis player",
		},
	}
	e8Once.Do(func() {
		fmt.Printf("\n=== E8: webspace conceptual queries vs keyword baseline (128 players, 40 finals) ===\n")
		fmt.Printf("%-38s %8s | %18s | %18s\n", "query", "answers", "webspace P / R", "keyword P / R")
		for _, tm := range templates {
			truthObjs, err := site.W.Run(tm.query)
			if err != nil {
				panic(err)
			}
			truth := map[int64]bool{}
			for _, o := range truthObjs {
				truth[o.ID] = true
			}
			// Webspace result is exact by construction; verify anyway.
			var wsPR eval.PR
			for _, o := range truthObjs {
				if truth[o.ID] {
					wsPR.TP++
				} else {
					wsPR.FP++
				}
			}
			// Keyword baseline: top 2*|truth| pages mapped to objects.
			k := 2 * len(truthObjs)
			if k < 10 {
				k = 10
			}
			ids, err := eng.KeywordObjectSearch(tm.keyword, k)
			if err != nil {
				panic(err)
			}
			var kwPR eval.PR
			matched := map[int64]bool{}
			for _, id := range ids {
				if truth[id] {
					kwPR.TP++
					matched[id] = true
				} else {
					kwPR.FP++
				}
			}
			kwPR.FN = len(truth) - len(matched)
			fmt.Printf("%-38s %8d |    %6.3f / %6.3f |    %6.3f / %6.3f\n",
				tm.name, len(truthObjs),
				wsPR.Precision(), wsPR.Recall(),
				kwPR.Precision(), kwPR.Recall())
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := site.W.Run(templates[i%len(templates)].query); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------- E9: end-to-end demo

var e9Once sync.Once

// BenchmarkE9EndToEnd runs the motivating query against a fully indexed
// pipeline: synthetic broadcasts -> FDE -> meta-index -> combined query,
// reporting the latency decomposition.
func BenchmarkE9EndToEnd(b *testing.B) {
	vids := benchCorpus(b)
	e9Once.Do(func() {
		t0 := time.Now()
		site, err := webspace.GenerateAusOpen(webspace.SiteConfig{
			Players: 32, YearStart: 2000, YearEnd: 2001, Seed: 16,
		})
		if err != nil {
			panic(err)
		}
		genDur := time.Since(t0)

		// Index one broadcast per final video name.
		t0 = time.Now()
		idx, err := core.NewMetaIndex()
		if err != nil {
			panic(err)
		}
		engine, err := fde.NewTennisEngine(fde.DefaultTennisConfig())
		if err != nil {
			panic(err)
		}
		names := site.W.All("Video")
		for i, vid := range names {
			vo, _ := site.W.Get(vid)
			src := vids[i%len(vids)]
			v := core.Video{
				Name: vo.StringAttr("name"), Width: src.W, Height: src.H,
				FPS: src.FPS, Frames: len(src.Frames),
			}
			res, err := engine.Process(v, src.Frames)
			if err != nil {
				panic(err)
			}
			if _, err := fde.IndexResult(res, idx); err != nil {
				panic(err)
			}
		}
		indexDur := time.Since(t0)

		t0 = time.Now()
		eng, err := newDlseForBench(site, idx)
		if err != nil {
			panic(err)
		}
		buildDur := time.Since(t0)

		t0 = time.Now()
		results := runMotivating(eng, site)
		queryDur := time.Since(t0)

		scenes := 0
		for _, r := range results {
			scenes += len(r.Scenes)
		}
		st := idx.Stats()
		fmt.Printf("\n=== E9: end-to-end motivating query ===\n")
		fmt.Printf("site generation:   %12v\n", genDur.Round(time.Millisecond))
		fmt.Printf("video indexing:    %12v  (%d videos, %d segments, %d events)\n",
			indexDur.Round(time.Millisecond), st.Videos, st.Segments, st.Events)
		fmt.Printf("engine build:      %12v\n", buildDur.Round(time.Millisecond))
		fmt.Printf("combined query:    %12v  (%d players, %d net-play scenes)\n",
			queryDur.Round(time.Microsecond), len(results), scenes)
		e9eng, e9site = eng, site
	})
	if e9eng == nil {
		b.Skip("end-to-end fixture unavailable")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runMotivating(e9eng, e9site)
	}
}

var (
	e9eng  benchQuerier
	e9site *webspace.Site
)

// benchQuerier is the combined engine used by E8/E9.
type benchQuerier = *dlse.Engine

func newDlseForBench(site *webspace.Site, idx *core.MetaIndex) (*dlse.Engine, error) {
	return dlse.New(site, idx)
}

func runMotivating(eng *dlse.Engine, site *webspace.Site) []dlse.Result {
	req, err := dlse.ParseRequest(site.W.Schema(), dlse.MotivatingQueryText)
	if err != nil {
		panic(err)
	}
	results, err := eng.Query(req)
	if err != nil {
		panic(err)
	}
	return results
}

// ------------------------------------------------- throughput benchmarks

// BenchmarkSVFEncode measures SVF compression throughput.
func BenchmarkSVFEncode(b *testing.B) {
	vids := benchCorpus(b)
	frames := vids[0].Frames[:100]
	b.SetBytes(int64(100 * 3 * vids[0].W * vids[0].H))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vidfmt.EncodeAll(frames, 25, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVFDecode measures SVF decode throughput.
func BenchmarkSVFDecode(b *testing.B) {
	vids := benchCorpus(b)
	frames := vids[0].Frames[:100]
	data, err := vidfmt.EncodeAll(frames, 25, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(100 * 3 * vids[0].W * vids[0].H))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := vidfmt.DecodeAll(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogram measures colour-histogram extraction speed: the
// allocating form against the scratch-reuse form the ingest hot loop uses
// (one histogram per frame vs zero steady-state allocations).
func BenchmarkHistogram(b *testing.B) {
	vids := benchCorpus(b)
	im := vids[0].Frames[0]
	b.Run("alloc", func(b *testing.B) {
		b.SetBytes(int64(3 * im.W * im.H))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = frame.HistogramOf(im, 8)
		}
	})
	b.Run("reuse", func(b *testing.B) {
		h := frame.NewHistogram(8)
		b.SetBytes(int64(3 * im.W * im.H))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.SetImage(im)
		}
	})
}

// BenchmarkQuadSegment measures the quadtree player segmentation.
func BenchmarkQuadSegment(b *testing.B) {
	cfg := synth.DefaultConfig(9000)
	frames, _, _, _, _ := synth.RenderTennisShot(cfg, "rally", 2)
	tcfg := track.DefaultConfig()
	bg := track.EstimateBackground(frames[0], tcfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = track.QuadSegment(frames[0], bg, frames[0].Bounds(), tcfg)
	}
}

// BenchmarkFDEPipeline measures full-pipeline indexing throughput.
func BenchmarkFDEPipeline(b *testing.B) {
	vids := benchCorpus(b)
	v := vids[0]
	engine, err := fde.NewTennisEngine(fde.DefaultTennisConfig())
	if err != nil {
		b.Fatal(err)
	}
	doc := core.Video{Name: "bench", Width: v.W, Height: v.H, FPS: v.FPS, Frames: len(v.Frames)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Process(doc, v.Frames); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(v.Frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkBatchIngest measures concurrent batch-ingestion throughput:
// the full FDE pipeline over an 8-video corpus with 1 worker vs one worker
// per CPU. The outputs are byte-identical (see TestIndexBatchMatchesSequential);
// only the wall clock differs.
func BenchmarkBatchIngest(b *testing.B) {
	cfg := synth.DefaultConfig(1200)
	cfg.Shots = 6
	vids, err := synth.GenerateCorpus(cfg, 8)
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]IngestJob, len(vids))
	frames := 0
	for i, v := range vids {
		jobs[i] = IngestJob{Name: fmt.Sprintf("batch-%02d", i), Frames: v.Frames, FPS: v.FPS}
		frames += len(v.Frames)
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lib, err := NewLibrary()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := lib.IndexBatch(context.Background(), jobs, BatchOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(frames)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// BenchmarkIRIndexing measures document indexing throughput.
func BenchmarkIRIndexing(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	docs := make([]string, 500)
	for i := range docs {
		var sb strings.Builder
		for w := 0; w < 80; w++ {
			fmt.Fprintf(&sb, "w%d ", rng.Intn(2000))
		}
		docs[i] = sb.String()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := ir.NewIndex()
		for d, text := range docs {
			if _, err := ix.Add(fmt.Sprintf("d%d", d), text); err != nil {
				b.Fatal(err)
			}
		}
		ix.Freeze()
	}
	b.ReportMetric(float64(len(docs))*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
}

// BenchmarkIRQueryFull measures exhaustive query latency on the 20k corpus.
func BenchmarkIRQueryFull(b *testing.B) {
	ix := benchIRCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Search("w0 w1", 10); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	segSearchOnce sync.Once
	segSearchSets map[int]*ir.Segments
)

// benchSegmentedCorpus builds the BenchmarkIRQueryFull corpus (same seed,
// same 20k documents) split across 1 and 4 immutable segments.
func benchSegmentedCorpus(b *testing.B) map[int]*ir.Segments {
	b.Helper()
	segSearchOnce.Do(func() {
		segSearchSets = map[int]*ir.Segments{}
		for _, nseg := range []int{1, 4} {
			rng := rand.New(rand.NewSource(2000))
			zipf := rand.NewZipf(rng, 1.15, 1, 2999)
			parts := make([]*ir.Index, nseg)
			for i := range parts {
				parts[i] = ir.NewIndex()
			}
			const docs = 20000
			per := (docs + nseg - 1) / nseg
			for d := 0; d < docs; d++ {
				n := 40 + rng.Intn(120)
				var sb strings.Builder
				for w := 0; w < n; w++ {
					fmt.Fprintf(&sb, "w%d ", zipf.Uint64())
				}
				if _, err := parts[d/per].Add(fmt.Sprintf("d%05d", d), sb.String()); err != nil {
					panic(err)
				}
			}
			segs, err := ir.NewSegments(parts)
			if err != nil {
				panic(err)
			}
			segSearchSets[nseg] = segs
		}
	})
	return segSearchSets
}

// BenchmarkSegmentedSearch measures scatter-gather ranked retrieval across
// 1 vs 4 immutable segments of the same 20k-document corpus. Answers are
// byte-identical to the monolithic index by construction (segments freeze
// against union corpus statistics; ir.TestSegmentsMatchMonolithic locks
// it); this measures what the scatter legs and the top-K stream merge cost
// — the latency shape of the incremental, shard-per-commit engine.
func BenchmarkSegmentedSearch(b *testing.B) {
	sets := benchSegmentedCorpus(b)
	for _, nseg := range []int{1, 4} {
		segs := sets[nseg]
		b.Run(fmt.Sprintf("segs=%d", nseg), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := segs.Search("w0 w1", 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------ segfile persistence

var (
	coldOpenOnce  sync.Once
	coldOpenBlobs map[string][]byte // "format/segs=N" -> serialized library
)

// coldCorpusParts builds the synthetic meta-index rows of the cold-open
// corpus: the same 64 videos (8 shots, 24 tracked states and 4 events per
// shot) split across nseg partitions, each seeded at the previous one's ID
// state — identical rows in every split.
func coldCorpusParts(nseg int) ([]*core.MetaIndex, []core.SegmentMeta) {
	const vids = 64
	parts := make([]*core.MetaIndex, 0, nseg)
	metas := make([]core.SegmentMeta, 0, nseg)
	base := core.IDBase{}
	kinds := []string{"net-play", "rally", "service", "volley"}
	seq := 0
	per := vids / nseg
	for i := 0; i < nseg; i++ {
		p, err := core.NewMetaIndexAt(base)
		if err != nil {
			panic(err)
		}
		for v := 0; v < per; v++ {
			vid, err := p.AddVideo(core.Video{
				Name: fmt.Sprintf("bench-%04d", seq), Path: fmt.Sprintf("/corpus/b%04d.svf", seq),
				Width: 160, Height: 120, FPS: 25, Frames: 2400,
			})
			if err != nil {
				panic(err)
			}
			for s := 0; s < 8; s++ {
				iv := core.Interval{Start: 300 * s, End: 300 * (s + 1)}
				class := "tennis"
				if s%3 == 2 {
					class = "close-up"
				}
				seg, err := p.AddSegment(core.Segment{VideoID: vid, Interval: iv, Class: class})
				if err != nil {
					panic(err)
				}
				obj, err := p.AddObject(core.Object{
					VideoID: vid, SegmentID: seg, Name: "player", Interval: iv,
				})
				if err != nil {
					panic(err)
				}
				for f := 0; f < 24; f++ {
					if err := p.AddState(core.ObjectState{
						ObjectID: obj, Frame: iv.Start + 12*f, Found: true,
						X: float64(10 + f), Y: float64(20 + s), Area: 40 + f,
					}); err != nil {
						panic(err)
					}
				}
				for e := 0; e < 4; e++ {
					if _, err := p.AddEvent(core.Event{
						VideoID: vid, SegmentID: seg, Kind: kinds[(s+e)%len(kinds)],
						ActorID: obj, Interval: core.Interval{Start: iv.Start + 60*e, End: iv.Start + 60*e + 40},
						Confidence: 0.5 + float64(e)/10,
					}); err != nil {
						panic(err)
					}
				}
			}
			seq++
		}
		parts = append(parts, p)
		metas = append(metas, core.SegmentMeta{ID: int64(i + 1), Base: base})
		base = p.IDState()
	}
	return parts, metas
}

// benchColdOpenBlobs serializes the cold-open corpus in both on-disk
// formats at 1 and 4 segments, once per process.
func benchColdOpenBlobs(b *testing.B) map[string][]byte {
	b.Helper()
	coldOpenOnce.Do(func() {
		coldOpenBlobs = map[string][]byte{}
		for _, nseg := range []int{1, 4} {
			parts, metas := coldCorpusParts(nseg)
			var sf, lg strings.Builder
			if err := core.WriteSegfile(&sf, parts, metas, int64(nseg)); err != nil {
				panic(err)
			}
			if err := core.SaveSegmented(&lg, parts, metas, int64(nseg)); err != nil {
				panic(err)
			}
			coldOpenBlobs[fmt.Sprintf("segfile/segs=%d", nseg)] = []byte(sf.String())
			coldOpenBlobs[fmt.Sprintf("legacy/segs=%d", nseg)] = []byte(lg.String())
		}
	})
	return coldOpenBlobs
}

// BenchmarkColdOpen measures time-to-first-query readiness of a persisted
// library: the legacy format pays a full deserialize (rows + hash index
// rebuild, O(corpus)) before the first answer, while the segfile format
// memory-maps and verifies only the manifest (O(segments)) — segment rows
// fault in lazily on first touch. NumSegments is answered from the
// manifest, so the mmap legs never hydrate.
func BenchmarkColdOpen(b *testing.B) {
	blobs := benchColdOpenBlobs(b)
	for _, nseg := range []int{1, 4} {
		for _, format := range []string{"legacy", "segfile"} {
			name := fmt.Sprintf("%s/segs=%d", format, nseg)
			data := blobs[name]
			b.Run(name, func(b *testing.B) {
				path := filepath.Join(b.TempDir(), "lib.db")
				if err := os.WriteFile(path, data, 0o644); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					view, closer, err := core.OpenSegmentedFile(path)
					if err != nil {
						b.Fatal(err)
					}
					if view.NumSegments() != nseg {
						b.Fatalf("segments = %d", view.NumSegments())
					}
					if closer != nil {
						if err := closer.Close(); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkSegfileSearch is BenchmarkSegmentedSearch over the memory-mapped
// text-index segfile: the same 20k-document corpus searched through
// zero-copy posting views instead of heap-decoded postings. Answers are
// byte-identical to the heap path (checked here once per run; the ir
// segfile tests lock it exhaustively).
func BenchmarkSegfileSearch(b *testing.B) {
	sets := benchSegmentedCorpus(b)
	for _, nseg := range []int{1, 4} {
		segs := sets[nseg]
		b.Run(fmt.Sprintf("segs=%d", nseg), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "text.segf")
			f, err := os.Create(path)
			if err != nil {
				b.Fatal(err)
			}
			if err := ir.WriteSegments(f, segs, 42); err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
			ms, err := ir.OpenSegmentsFile(path, 42)
			if err != nil {
				b.Fatal(err)
			}
			defer ms.Close()
			want, _, err := segs.Search("w0 w1", 10)
			if err != nil {
				b.Fatal(err)
			}
			got, _, err := ms.Segments.Search("w0 w1", 10)
			if err != nil {
				b.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				b.Fatal("mapped answers diverge from heap")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ms.Segments.Search("w0 w1", 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// -------------------------------------------------------- ablations

var ablHistOnce sync.Once

// BenchmarkAblationHistogram compares histogram resolutions and distance
// metrics for boundary detection (DESIGN.md §6).
func BenchmarkAblationHistogram(b *testing.B) {
	vids := benchCorpus(b)
	ablHistOnce.Do(func() {
		fmt.Printf("\n=== Ablation: histogram bins and metric (boundary F1) ===\n")
		fmt.Printf("%-8s %-8s %10s\n", "bins", "metric", "F1")
		for _, bins := range []int{4, 8, 16} {
			for _, m := range []shotdet.Metric{shotdet.MetricL1, shotdet.MetricChiSquare} {
				var pr eval.PR
				for _, v := range vids {
					cfg := shotdet.DefaultConfig()
					cfg.Bins = bins
					cfg.Metric = m
					got := boundariesOf(shotdet.DetectBoundaries(v.Frames, cfg))
					pr.Add(eval.MatchBoundaries(got, v.Truth.Boundaries(), 2))
				}
				fmt.Printf("%-8d %-8s %10.3f\n", bins, m, pr.F1())
			}
		}
	})
	v := vids[0]
	cfg := shotdet.DefaultConfig()
	cfg.Bins = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = shotdet.DetectBoundaries(v.Frames, cfg)
	}
}

var ablWinOnce sync.Once

// BenchmarkAblationSearchWindow sweeps the tracker's predict-and-search
// window radius (DESIGN.md §6).
func BenchmarkAblationSearchWindow(b *testing.B) {
	ablWinOnce.Do(func() {
		fmt.Printf("\n=== Ablation: tracker search window radius ===\n")
		fmt.Printf("%-8s %12s %8s\n", "radius", "near err px", "lost")
		for _, r := range []int{8, 16, 24, 40} {
			cfg := synth.DefaultConfig(9100)
			frames, near, _, _, err := synth.RenderTennisShot(cfg, "rally", 60)
			if err != nil {
				panic(err)
			}
			tcfg := track.DefaultConfig()
			tcfg.SearchRadius = r
			res := track.TrackShot(frames, tcfg)
			fmt.Printf("%-8d %12.2f %7d%%\n", r,
				meanTrackError(res.Near, near), 100*res.Near.LostFrames/len(frames))
		}
	})
	cfg := synth.DefaultConfig(9100)
	frames, _, _, _, _ := synth.RenderTennisShot(cfg, "rally", 60)
	tcfg := track.DefaultConfig()
	tcfg.SearchRadius = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = track.TrackShot(frames, tcfg)
	}
}

var ablIncOnce sync.Once

// BenchmarkAblationIncremental compares full FDE re-processing against
// incremental re-indexing when only a rule detector changed (DESIGN.md §6).
func BenchmarkAblationIncremental(b *testing.B) {
	vids := benchCorpus(b)
	v := vids[0]
	engine, err := fde.NewTennisEngine(fde.DefaultTennisConfig())
	if err != nil {
		b.Fatal(err)
	}
	doc := core.Video{Name: "inc", Width: v.W, Height: v.H, FPS: v.FPS, Frames: len(v.Frames)}
	prior, err := engine.Process(doc, v.Frames)
	if err != nil {
		b.Fatal(err)
	}
	ablIncOnce.Do(func() {
		t0 := time.Now()
		if _, err := engine.Process(doc, v.Frames); err != nil {
			panic(err)
		}
		full := time.Since(t0)
		t0 = time.Now()
		if _, err := engine.Reprocess(prior, v.Frames, "rally"); err != nil {
			panic(err)
		}
		inc := time.Since(t0)
		fmt.Printf("\n=== Ablation: incremental re-indexing (rule change) ===\n")
		fmt.Printf("full re-process:   %12v\n", full.Round(time.Microsecond))
		fmt.Printf("incremental:       %12v  (%.0fx faster)\n",
			inc.Round(time.Microsecond), float64(full)/float64(inc))
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Reprocess(prior, v.Frames, "rally"); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------- query-serving benchmarks

var (
	serveOnce   sync.Once
	serveEngine *dlse.Engine
	serveSite   *webspace.Site
)

// serveFixture builds the serving benchmark fixture once: a mid-size site
// plus a synthetic meta-index (events attached directly, skipping the pixel
// pipeline); the sub-benchmarks wrap it in servers as needed.
func serveFixture(b *testing.B) (*dlse.Engine, *webspace.Site) {
	b.Helper()
	serveOnce.Do(func() {
		site, err := webspace.GenerateAusOpen(webspace.SiteConfig{
			Players: 64, YearStart: 1992, YearEnd: 2001, Seed: 16,
		})
		if err != nil {
			panic(err)
		}
		idx, err := core.NewMetaIndex()
		if err != nil {
			panic(err)
		}
		for _, vid := range site.W.All("Video") {
			vo, _ := site.W.Get(vid)
			id, err := idx.AddVideo(core.Video{Name: vo.StringAttr("name"), Width: 160, Height: 120, FPS: 25, Frames: 500})
			if err != nil {
				panic(err)
			}
			seg, err := idx.AddSegment(core.Segment{VideoID: id, Interval: core.Interval{Start: 0, End: 200}, Class: "tennis"})
			if err != nil {
				panic(err)
			}
			if _, err := idx.AddEvent(core.Event{VideoID: id, SegmentID: seg, Kind: "net-play", Interval: core.Interval{Start: 120, End: 180}, Confidence: 0.9}); err != nil {
				panic(err)
			}
		}
		eng, err := dlse.New(site, idx)
		if err != nil {
			panic(err)
		}
		serveEngine, serveSite = eng, site
	})
	return serveEngine, serveSite
}

// BenchmarkDLSEQuery measures the combined motivating query on the
// planner/operator path: cold (full execution each iteration, no cache)
// versus cached (served from the sharded LRU). The gap is the serving
// layer's win on repeated interactive queries.
func BenchmarkDLSEQuery(b *testing.B) {
	eng, site := serveFixture(b)
	req, err := dlse.ParseRequest(site.W.Schema(), dlse.MotivatingQueryText)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.QueryContext(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		srv := serve.New(eng, serve.Options{CacheSize: 256})
		if _, _, err := srv.QueryRequest(ctx, req); err != nil { // warm
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, cached, err := srv.QueryRequest(ctx, req); err != nil || !cached {
				b.Fatalf("cached=%t err=%v", cached, err)
			}
		}
	})
	b.Run("cached-parallel", func(b *testing.B) {
		srv := serve.New(eng, serve.Options{CacheSize: 256})
		if _, _, err := srv.QueryRequest(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, err := srv.QueryRequest(ctx, req); err != nil {
					b.Error(err) // Fatal must not be called off the benchmark goroutine
					return
				}
			}
		})
	})
}

// BenchmarkDLSETextRank isolates the serving path the scoring kernel feeds:
// a combined query whose ranking part dominates (no scene join), so the
// text operator — analysis, dense scoring, merge — is most of the work.
func BenchmarkDLSETextRank(b *testing.B) {
	eng, _ := serveFixture(b)
	req := dlse.Request{
		Class: "Player",
		Text:  "champion winner australian open final interview",
		Limit: 10,
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.QueryContext(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVecSearch measures the embedding-similarity lane on the serving
// fixture: hash-embed the query, IVF-probe every page and video segment,
// merge the ranked stream. The answer is byte-identical to the brute-force
// reference (internal/vec locks it); this measures the serving cost.
func BenchmarkVecSearch(b *testing.B) {
	eng, _ := serveFixture(b)
	ctx := context.Background()
	q := dlse.Query{Vector: "champion winner australian open final"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridSearch measures the fused lane: the full keyword ranking
// and the full vector ranking executed back to back, combined by
// reciprocal-rank fusion. The delta over BenchmarkVecSearch plus
// BenchmarkDLSETextRank is the fusion overhead itself.
func BenchmarkHybridSearch(b *testing.B) {
	eng, _ := serveFixture(b)
	ctx := context.Background()
	q := dlse.Query{Hybrid: "champion winner australian open final"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventsRelated measures the composite event query: the reference
// O(A·B) pairwise scan against the sort + interval-sweep, on the same
// seeded corpus (identical output, locked by the cross-check test in
// internal/core).
func BenchmarkEventsRelated(b *testing.B) {
	idx, err := core.NewMetaIndex()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	kinds := []string{"rally", "net-play", "service"}
	for v := 0; v < 8; v++ {
		vid, err := idx.AddVideo(core.Video{Name: "v", Frames: 100000})
		if err != nil {
			b.Fatal(err)
		}
		seg, err := idx.AddSegment(core.Segment{VideoID: vid, Interval: core.Interval{Start: 0, End: 100000}, Class: "tennis"})
		if err != nil {
			b.Fatal(err)
		}
		for e := 0; e < 500; e++ {
			start := rng.Intn(99000)
			if _, err := idx.AddEvent(core.Event{
				VideoID: vid, SegmentID: seg, Kind: kinds[rng.Intn(len(kinds))],
				Interval: core.Interval{Start: start, End: start + 1 + rng.Intn(400)},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	wanted := []core.AllenRelation{core.RelDuring, core.RelStarts, core.RelFinishes, core.RelEquals}

	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.EventsRelatedNaive("net-play", "rally", wanted...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.EventsRelated("net-play", "rally", wanted...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSceneJoin measures the event→video scene join across its three
// regimes: the retained row-store reference path (per-event Select +
// VideoByID round-trips), the frozen columnar view built cold (a cheap
// version bump before every lookup forces a rebuild), and the hot view
// (pure slice copy). One and four partitions cover the monolithic and the
// scatter shape.
func BenchmarkSceneJoin(b *testing.B) {
	for _, nseg := range []int{1, 4} {
		parts, metas := coldCorpusParts(nseg)
		si, err := core.NewSegmentedIndex(parts, metas, 1)
		if err != nil {
			b.Fatal(err)
		}
		kinds := []string{"net-play", "rally", "service", "volley"}
		b.Run(fmt.Sprintf("ref/segs=%d", nseg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := si.ScenesReference(kinds[i%len(kinds)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("cold/segs=%d", nseg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Invalidate every partition's view; features are not read
				// by the view build, so the corpus answer is unchanged.
				for _, p := range parts {
					if err := p.AddFeature(core.FeatureValue{Name: "bump"}); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := si.Scenes(kinds[i%len(kinds)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("hot/segs=%d", nseg), func(b *testing.B) {
			b.ReportAllocs()
			if _, err := si.Scenes("rally"); err != nil { // warm the view
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := si.Scenes(kinds[i%len(kinds)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
